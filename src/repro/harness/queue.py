"""SQLite-backed fault-tolerant sweep queue.

``SweepQueue`` materializes a sweep grid as rows in a WAL-mode sqlite
database so that any number of worker processes — started on any machine
sharing the queue directory, at any time — can pull open cells, execute
them, and commit results without coordinating with each other or with
the process that created the queue.  The design follows the
PyExperimenter pattern: the grid *is* the table, and the execution fleet
is stateless.

Robustness model
----------------

Every cell row carries a status machine::

    open ──claim──▶ leased ──complete──▶ done
      ▲                │
      │                ├─fail (deterministic)──▶ failed
      │                │
      └──backoff───────┴─fail (infrastructure) / lease expiry
                             │
                             └─after max_attempts──▶ quarantined

* **Leases.**  A claim grants a lease with a wall-clock deadline; the
  worker heartbeats to extend it while executing.  A worker that is
  SIGKILLed (or whose machine dies) simply stops heartbeating: the next
  ``claim``/``reap`` reclaims the expired lease and re-opens the cell
  with capped exponential backoff.  Because every cell is a
  deterministic simulation, a re-execution after a lost lease produces
  byte-identical results — a late commit from a zombie worker is a
  first-writer-wins no-op.
* **Deterministic vs. infrastructure failures.**  A cell that *raises*
  (stall, event-budget exhaustion, invariant violation, bad input) fails
  the same way on every host, exactly as it would under serial
  ``Sweep.run()`` — it is recorded terminally as ``failed`` so a
  queue-executed grid stays byte-identical to the serial oracle.  Only
  infrastructure failures (lease expiry, a killed or crashed cell
  process, a wall-clock timeout) are retried; after ``max_attempts``
  the cell is quarantined with an evidence bundle instead of wedging
  the grid.
* **Idempotent commits.**  Results land as files created with
  first-writer-wins semantics (``os.link`` of a private temp file), so
  duplicate executions commit exactly one result and the database
  transition to ``done`` is a plain idempotent UPDATE.

Concurrency relies on sqlite WAL mode plus ``BEGIN IMMEDIATE``
transactions; the queue directory must live on a filesystem with
working POSIX locks (local disk, most cluster filesystems — *not* NFS
with broken locking).  Connections are opened per operation so worker
processes can be forked freely.
"""

from __future__ import annotations

import json
import os
import pickle
import sqlite3
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.harness.results import FailedRun
from repro.harness.io import failed_to_dict, load_result, result_to_dict

_DB_NAME = "queue.sqlite3"
_GRID_NAME = "grid.pkl"

# Statuses a cell row can be in.  "open" and "leased" are live; the
# other three are terminal ("failed" deterministically, "quarantined"
# after exhausting infrastructure retries, "done" successfully).
LIVE_STATUSES = ("open", "leased")
TERMINAL_STATUSES = ("done", "failed", "quarantined")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS cells (
    idx            INTEGER PRIMARY KEY,
    fingerprint    TEXT,
    group_fp       TEXT,
    status         TEXT NOT NULL DEFAULT 'open',
    owner          TEXT,
    last_owner     TEXT,
    lease_deadline REAL,
    not_before     REAL NOT NULL DEFAULT 0,
    attempts       INTEGER NOT NULL DEFAULT 0,
    error_type     TEXT,
    message        TEXT,
    result_path    TEXT,
    bundle_path    TEXT
);
CREATE INDEX IF NOT EXISTS cells_status ON cells (status);
CREATE TABLE IF NOT EXISTS events (
    seq    INTEGER PRIMARY KEY AUTOINCREMENT,
    cell   INTEGER NOT NULL,
    at     REAL NOT NULL,
    owner  TEXT,
    event  TEXT NOT NULL,
    detail TEXT
);
"""


def backoff_delay(attempts: int, base: float, cap: float) -> float:
    """Capped exponential backoff before re-opening a failed cell.

    ``attempts`` is the number of executions already granted; the first
    retry waits ``base`` seconds, each further retry doubles, and the
    delay never exceeds ``cap``.
    """
    if attempts < 1:
        return 0.0
    # Cap the exponent too, so huge attempt counts cannot overflow.
    return min(base * (2.0 ** min(attempts - 1, 63)), cap)


def jittered_backoff_delay(attempts: int, base: float, cap: float,
                           token: str = "") -> float:
    """Decorrelated-jitter backoff for lease reclamation.

    A SIGKILLed fleet leaves all its leases expiring at the same
    instant; plain exponential backoff then re-opens every cell at the
    same ``not_before``, and the restarted fleet thundering-herds the
    sqlite lease transaction.  Decorrelated jitter spreads the delays
    across ``[base, min(cap, base * 3**(attempts-1))]`` instead.

    The jitter is *deterministic*: ``token`` (cell index, attempt count,
    last owner) is hashed to the uniform draw, so the schedule is
    reproducible across reruns and across the workers racing to reclaim
    — whichever worker wins the transaction computes the same delay.
    Timing never reaches the simulation, so results stay byte-identical.
    """
    if attempts < 1 or base <= 0.0:
        return 0.0
    import hashlib

    ceiling = min(base * (3.0 ** min(attempts - 1, 40)), cap)
    if ceiling <= base:
        return min(base, cap)
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    unit = int.from_bytes(digest[:8], "big") / 2.0 ** 64
    return base + unit * (ceiling - base)


@dataclass(frozen=True)
class QueueSettings:
    """Per-queue execution policy, fixed at creation time.

    Stored in the database so every worker — local or remote — enforces
    the same leases, retry budget, and timeouts.
    """

    lease_duration: float = 30.0
    max_attempts: int = 3
    backoff_base: float = 1.0
    backoff_cap: float = 60.0
    cell_timeout: Optional[float] = None

    def to_json(self) -> str:
        return json.dumps({
            "lease_duration": self.lease_duration,
            "max_attempts": self.max_attempts,
            "backoff_base": self.backoff_base,
            "backoff_cap": self.backoff_cap,
            "cell_timeout": self.cell_timeout,
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "QueueSettings":
        data = json.loads(text)
        return cls(
            lease_duration=data["lease_duration"],
            max_attempts=data["max_attempts"],
            backoff_base=data["backoff_base"],
            backoff_cap=data["backoff_cap"],
            cell_timeout=data["cell_timeout"],
        )


@dataclass(frozen=True)
class Lease:
    """One granted cell execution: who runs what, until when."""

    idx: int
    key: object  # SweepKey
    args: tuple
    group_fp: Optional[str]
    attempts: int
    deadline: float


@dataclass(frozen=True)
class QueueStats:
    """Row counts by status (one ``stats()`` snapshot)."""

    open: int = 0
    leased: int = 0
    done: int = 0
    failed: int = 0
    quarantined: int = 0

    @property
    def total(self) -> int:
        return (self.open + self.leased + self.done + self.failed
                + self.quarantined)

    @property
    def live(self) -> int:
        return self.open + self.leased

    @property
    def unhealthy(self) -> int:
        return self.failed + self.quarantined


@dataclass(frozen=True)
class LeaseHealth:
    """One live lease as the health snapshot sees it."""

    idx: int
    owner: Optional[str]
    attempts: int
    age: float  # seconds since the lease was granted (or last extended)
    remaining: float  # seconds until expiry; negative = stale

    @property
    def stale(self) -> bool:
        return self.remaining < 0.0

    def to_dict(self) -> dict:
        return {
            "idx": self.idx,
            "owner": self.owner,
            "attempts": self.attempts,
            "age_s": round(self.age, 3),
            "remaining_s": round(self.remaining, 3),
            "stale": self.stale,
        }


@dataclass(frozen=True)
class QueueHealth:
    """One observation of a queue: counts plus every live lease.

    This is the snapshot the service's ``/healthz`` endpoint and the
    ``queue status`` CLI both render.  A *stale* lease (its deadline has
    passed but no claim/reap has reclaimed it yet) is the signature of a
    dead worker awaiting recovery.
    """

    stats: QueueStats
    leases: tuple  # of LeaseHealth
    at: float

    @property
    def stale_leases(self) -> tuple:
        return tuple(lease for lease in self.leases if lease.stale)

    @property
    def drained(self) -> bool:
        return self.stats.live == 0

    def to_dict(self) -> dict:
        s = self.stats
        return {
            "cells": {
                "open": s.open, "leased": s.leased, "done": s.done,
                "failed": s.failed, "quarantined": s.quarantined,
                "total": s.total,
            },
            "drained": self.drained,
            "leases": [lease.to_dict() for lease in self.leases],
            "stale_leases": len(self.stale_leases),
        }


def default_owner() -> str:
    """A globally unique worker identity (host:pid:nonce)."""
    import socket

    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:6]}"


class SweepQueue:
    """A sweep grid materialized as lease-managed sqlite rows.

    Use :meth:`create` (or :meth:`create_or_attach`) from the process
    that owns the grid, and :meth:`open` from workers.  All methods are
    safe to call concurrently from any number of processes.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.db_path = self.root / _DB_NAME
        self.grid_path = self.root / _GRID_NAME
        self.results_dir = self.root / "results"
        self.bundles_dir = self.root / "bundles"
        self.cache_dir = self.root / "cache"
        self._grid: Optional[list] = None
        self._settings: Optional[QueueSettings] = None

    # ------------------------------------------------------------------
    # Construction / attachment
    # ------------------------------------------------------------------

    @classmethod
    def create(cls, root, cells, settings: Optional[QueueSettings] = None,
               code_fp: str = "") -> "SweepQueue":
        """Materialize a grid as a fresh queue.

        Args:
            root: Queue directory (created if missing).
            cells: ``(key, args, fingerprint, group_fp)`` per grid cell,
                in grid order.  ``args`` must be picklable — the grid
                travels to workers via ``grid.pkl``.
            settings: Lease/retry/timeout policy for every worker.
            code_fp: Source-tree fingerprint recorded for validation.
        """
        queue = cls(root)
        if queue.db_path.exists():
            raise FileExistsError(
                f"queue already exists at {queue.root}; use "
                "create_or_attach() to resume it"
            )
        settings = settings or QueueSettings()
        queue.root.mkdir(parents=True, exist_ok=True)
        queue.results_dir.mkdir(exist_ok=True)
        queue.bundles_dir.mkdir(exist_ok=True)
        payload = {
            "version": 1,
            "code_fp": code_fp,
            "cells": [(key, args) for key, args, _fp, _gfp in cells],
        }
        try:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise ValueError(
                "queue cells must be picklable (object workloads with "
                f"unpicklable state cannot be queued): {exc}"
            ) from exc
        tmp = queue.grid_path.with_suffix(f".tmp-{os.getpid()}")
        tmp.write_bytes(blob)
        os.replace(tmp, queue.grid_path)
        with queue._txn() as conn:
            conn.executescript(_SCHEMA)
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('settings', ?)",
                (settings.to_json(),),
            )
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('spec_digest', ?)",
                (cls._spec_digest(cells, code_fp),),
            )
            conn.executemany(
                "INSERT INTO cells (idx, fingerprint, group_fp) "
                "VALUES (?, ?, ?)",
                [(i, fp, gfp) for i, (_k, _a, fp, gfp) in enumerate(cells)],
            )
        return queue

    @classmethod
    def create_or_attach(cls, root, cells,
                         settings: Optional[QueueSettings] = None,
                         code_fp: str = "") -> "SweepQueue":
        """Create the queue, or attach to an existing one for the same grid.

        Attaching validates the spec digest (grid identity plus source
        fingerprint) so a half-finished queue is only ever resumed with
        the exact grid that created it.
        """
        queue = cls(root)
        if not queue.db_path.exists():
            return cls.create(root, cells, settings=settings, code_fp=code_fp)
        recorded = queue._meta("spec_digest")
        expected = cls._spec_digest(cells, code_fp)
        if recorded != expected:
            raise ValueError(
                f"queue at {queue.root} was created for a different grid "
                "or source tree; use a fresh --queue-dir"
            )
        return queue

    @classmethod
    def open(cls, root) -> "SweepQueue":
        """Attach to an existing queue (the worker entry point)."""
        queue = cls(root)
        if not queue.db_path.exists():
            raise FileNotFoundError(f"no sweep queue at {queue.root}")
        return queue

    @staticmethod
    def _spec_digest(cells, code_fp: str) -> str:
        import hashlib

        parts = [code_fp]
        for key, _args, fp, gfp in cells:
            parts.append(f"{key}|{fp}|{gfp}")
        return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Low-level plumbing
    # ------------------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.db_path, timeout=30.0)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=30000")
        return conn

    class _Txn:
        def __init__(self, queue: "SweepQueue") -> None:
            self.queue = queue
            self.conn: Optional[sqlite3.Connection] = None

        def __enter__(self) -> sqlite3.Connection:
            self.conn = self.queue._connect()
            self.conn.execute("BEGIN IMMEDIATE")
            return self.conn

        def __exit__(self, exc_type, _exc, _tb) -> None:
            assert self.conn is not None
            try:
                if exc_type is None:
                    self.conn.commit()
                else:
                    self.conn.rollback()
            finally:
                self.conn.close()

    def _txn(self) -> "_Txn":
        return self._Txn(self)

    def _meta(self, key: str) -> Optional[str]:
        conn = self._connect()
        try:
            row = conn.execute(
                "SELECT value FROM meta WHERE key=?", (key,)
            ).fetchone()
            return row[0] if row else None
        finally:
            conn.close()

    @property
    def settings(self) -> QueueSettings:
        if self._settings is None:
            text = self._meta("settings")
            if text is None:
                raise RuntimeError(f"queue at {self.root} has no settings")
            self._settings = QueueSettings.from_json(text)
        return self._settings

    def load_grid(self) -> list:
        """The (key, args) grid this queue was created from, in order."""
        if self._grid is None:
            payload = pickle.loads(self.grid_path.read_bytes())
            self._grid = payload["cells"]
        return self._grid

    @staticmethod
    def _log(conn, cell: int, owner: Optional[str], event: str,
             detail: str = "", now: Optional[float] = None) -> None:
        conn.execute(
            "INSERT INTO events (cell, at, owner, event, detail) "
            "VALUES (?, ?, ?, ?, ?)",
            (cell, time.time() if now is None else now, owner, event, detail),
        )

    # ------------------------------------------------------------------
    # The lease protocol
    # ------------------------------------------------------------------

    def claim(self, owner: str,
              now: Optional[float] = None) -> Optional[Lease]:
        """Lease the lowest open (and ready) cell, or None.

        Expired leases are reclaimed first, inside the same transaction,
        so a fleet of claiming workers is all the recovery machinery the
        queue needs: nobody has to notice a worker died.
        """
        now = time.time() if now is None else now
        s = self.settings
        quarantined: list[int] = []
        with self._txn() as conn:
            _reclaimed, quarantined = self._reclaim_locked(conn, now, s)
            row = conn.execute(
                "SELECT idx, attempts FROM cells WHERE status='open' AND "
                "not_before<=? ORDER BY idx LIMIT 1", (now,),
            ).fetchone()
            if row is not None:
                idx, attempts = row
                deadline = now + s.lease_duration
                conn.execute(
                    "UPDATE cells SET status='leased', owner=?, "
                    "last_owner=?, lease_deadline=?, attempts=attempts+1 "
                    "WHERE idx=?",
                    (owner, owner, deadline, idx),
                )
                self._log(conn, idx, owner, "claim",
                          f"attempt {attempts + 1}", now)
        self._write_quarantine_bundles(quarantined)
        if row is None:
            return None
        grid = self.load_grid()
        key, args = grid[idx]
        gfp = self._cell_column(idx, "group_fp")
        return Lease(idx=idx, key=key, args=args, group_fp=gfp,
                     attempts=attempts + 1, deadline=deadline)

    def heartbeat(self, idx: int, owner: str,
                  now: Optional[float] = None) -> bool:
        """Extend a held lease; False means the lease was lost.

        A worker whose heartbeat fails should abandon the cell: some
        other worker already reclaimed it (the eventual duplicate commit
        is harmless either way).
        """
        now = time.time() if now is None else now
        with self._txn() as conn:
            cur = conn.execute(
                "UPDATE cells SET lease_deadline=? "
                "WHERE idx=? AND status='leased' AND owner=?",
                (now + self.settings.lease_duration, idx, owner),
            )
            return cur.rowcount == 1

    def reap(self, now: Optional[float] = None) -> int:
        """Reclaim every expired lease; returns how many were reclaimed.

        ``claim`` already does this; ``reap`` exists so a supervisor can
        drive recovery even when no worker is currently claiming.
        """
        now = time.time() if now is None else now
        with self._txn() as conn:
            reclaimed, quarantined = self._reclaim_locked(
                conn, now, self.settings
            )
        self._write_quarantine_bundles(quarantined)
        return reclaimed

    def _reclaim_locked(self, conn, now: float,
                        s: QueueSettings) -> tuple[int, list[int]]:
        """Re-open or quarantine expired leases (inside a transaction).

        Returns ``(reclaimed_count, quarantined_indices)``; the caller
        writes the quarantine evidence bundles after the transaction
        commits (bundle IO must never extend the lock hold).
        """
        rows = conn.execute(
            "SELECT idx, owner, attempts FROM cells "
            "WHERE status='leased' AND lease_deadline<?", (now,),
        ).fetchall()
        quarantined = []
        for idx, owner, attempts in rows:
            message = (f"lease expired after attempt {attempts} "
                       f"(worker {owner} presumed dead)")
            if attempts >= s.max_attempts:
                conn.execute(
                    "UPDATE cells SET status='quarantined', owner=NULL, "
                    "error_type='LeaseExpired', message=? WHERE idx=?",
                    (message, idx),
                )
                self._log(conn, idx, owner, "quarantine", message, now)
                quarantined.append(idx)
            else:
                delay = jittered_backoff_delay(
                    attempts, s.backoff_base, s.backoff_cap,
                    token=f"{idx}:{attempts}:{owner}",
                )
                conn.execute(
                    "UPDATE cells SET status='open', owner=NULL, "
                    "not_before=?, error_type='LeaseExpired', message=? "
                    "WHERE idx=?",
                    (now + delay, message, idx),
                )
                self._log(conn, idx, owner, "reclaim",
                          f"backoff {delay:.3f}s", now)
        return len(rows), quarantined

    def release(self, idx: int, owner: str) -> bool:
        """Hand a leased cell back untouched (graceful worker drain).

        The attempt is refunded — a drained worker is not a failure.
        """
        with self._txn() as conn:
            cur = conn.execute(
                "UPDATE cells SET status='open', owner=NULL, "
                "lease_deadline=NULL, attempts=attempts-1 "
                "WHERE idx=? AND status='leased' AND owner=?",
                (idx, owner),
            )
            if cur.rowcount == 1:
                self._log(conn, idx, owner, "release")
            return cur.rowcount == 1

    # ------------------------------------------------------------------
    # Commit paths
    # ------------------------------------------------------------------

    def _result_path(self, idx: int) -> Path:
        return self.results_dir / f"cell-{idx:05d}.json"

    def complete(self, idx: int, owner: str, result) -> bool:
        """Commit a finished cell idempotently; returns True if counted.

        The result file is created first-writer-wins: a duplicate
        execution (zombie worker, reclaimed lease) finds the file
        already present — byte-identical by determinism — and its
        commit degrades to a no-op.  Works regardless of whether the
        committer still holds the lease.
        """
        path = self._result_path(idx)
        payload = json.dumps(result_to_dict(result), indent=2)
        tmp = path.with_suffix(f".tmp-{owner.replace('/', '_')}-{os.getpid()}")
        tmp.write_text(payload)
        try:
            os.link(tmp, path)  # atomic create-if-absent
            first_writer = True
        except FileExistsError:
            first_writer = False
        finally:
            tmp.unlink(missing_ok=True)
        with self._txn() as conn:
            cur = conn.execute(
                "UPDATE cells SET status='done', owner=NULL, last_owner=?, "
                "result_path=?, error_type=NULL, message=NULL "
                "WHERE idx=? AND status!='done'",
                (owner, str(path), idx),
            )
            self._log(conn, idx, owner,
                      "complete" if cur.rowcount else "duplicate-commit")
            return cur.rowcount == 1 and first_writer

    def fail(self, idx: int, owner: str, error_type: str, message: str,
             retryable: bool, bundle_path: Optional[str] = None,
             now: Optional[float] = None) -> str:
        """Record a failed execution; returns the cell's new status.

        Deterministic simulation failures (``retryable=False``) are
        terminal: the cell would fail identically under serial
        ``Sweep.run()``, so retrying would only burn cycles and the
        recorded ``FailedRun`` must match the serial oracle.
        Infrastructure failures (``retryable=True``: timeouts, crashed
        cell processes) re-open the cell with capped exponential
        backoff until ``max_attempts``, then quarantine it.
        """
        now = time.time() if now is None else now
        s = self.settings
        to_bundle = False
        with self._txn() as conn:
            row = conn.execute(
                "SELECT attempts FROM cells WHERE idx=?", (idx,)
            ).fetchone()
            attempts = row[0] if row else 0
            if not retryable:
                status = "failed"
                conn.execute(
                    "UPDATE cells SET status='failed', owner=NULL, "
                    "last_owner=?, error_type=?, message=?, bundle_path=? "
                    "WHERE idx=? AND status IN ('leased', 'open')",
                    (owner, error_type, message, bundle_path, idx),
                )
            elif attempts >= s.max_attempts:
                status = "quarantined"
                conn.execute(
                    "UPDATE cells SET status='quarantined', owner=NULL, "
                    "last_owner=?, error_type=?, message=?, bundle_path=? "
                    "WHERE idx=? AND status IN ('leased', 'open')",
                    (owner, error_type, message, bundle_path, idx),
                )
                to_bundle = bundle_path is None
            else:
                status = "open"
                delay = backoff_delay(attempts, s.backoff_base, s.backoff_cap)
                conn.execute(
                    "UPDATE cells SET status='open', owner=NULL, "
                    "last_owner=?, not_before=?, error_type=?, message=? "
                    "WHERE idx=? AND status IN ('leased', 'open')",
                    (owner, now + delay, error_type, message, idx),
                )
            self._log(conn, idx, owner, status if status != "open" else "retry",
                      f"{error_type}: {message}", now)
        if to_bundle:
            self._write_quarantine_bundles([idx])
        return status

    # ------------------------------------------------------------------
    # Quarantine evidence
    # ------------------------------------------------------------------

    def _write_quarantine_bundles(self, indices: list[int]) -> None:
        """Write an evidence bundle per quarantined cell (best effort).

        When the failing run produced no sanitizer crash bundle, the
        queue still leaves something to debug with: the cell's identity,
        its full attempt/lease history, and the last recorded error.
        """
        for idx in indices:
            try:
                path = self._write_quarantine_bundle(idx)
                with self._txn() as conn:
                    conn.execute(
                        "UPDATE cells SET bundle_path=? "
                        "WHERE idx=? AND bundle_path IS NULL",
                        (str(path), idx),
                    )
            except Exception:
                pass  # evidence is best-effort; the grid must drain

    def _write_quarantine_bundle(self, idx: int) -> Path:
        conn = self._connect()
        try:
            row = conn.execute(
                "SELECT fingerprint, status, attempts, last_owner, "
                "error_type, message FROM cells WHERE idx=?", (idx,),
            ).fetchone()
            history = conn.execute(
                "SELECT at, owner, event, detail FROM events "
                "WHERE cell=? ORDER BY seq", (idx,),
            ).fetchall()
        finally:
            conn.close()
        fingerprint, status, attempts, last_owner, error_type, message = row
        key, _args = self.load_grid()[idx]
        failed = FailedRun(
            workload=key.workload, policy=key.policy,
            error_type=error_type or "Quarantined", message=message or "",
            attempts=attempts, last_owner=last_owner,
        )
        bundle = self.bundles_dir / f"cell-{idx:05d}"
        bundle.mkdir(parents=True, exist_ok=True)
        manifest = {
            "kind": "quarantine",
            "cell": idx,
            "key": str(key),
            "fingerprint": fingerprint,
            "status": status,
            "failure": failed_to_dict(failed),
            "history": [
                {"at": at, "owner": ow, "event": ev, "detail": detail}
                for at, ow, ev, detail in history
            ],
        }
        (bundle / "manifest.json").write_text(json.dumps(manifest, indent=2))
        return bundle

    # ------------------------------------------------------------------
    # Observation / harvest
    # ------------------------------------------------------------------

    def _cell_column(self, idx: int, column: str):
        assert column in ("group_fp", "fingerprint", "status", "bundle_path")
        conn = self._connect()
        try:
            row = conn.execute(
                f"SELECT {column} FROM cells WHERE idx=?", (idx,)
            ).fetchone()
            return row[0] if row else None
        finally:
            conn.close()

    def stats(self) -> QueueStats:
        conn = self._connect()
        try:
            counts = dict(conn.execute(
                "SELECT status, COUNT(*) FROM cells GROUP BY status"
            ).fetchall())
        finally:
            conn.close()
        return QueueStats(
            open=counts.get("open", 0),
            leased=counts.get("leased", 0),
            done=counts.get("done", 0),
            failed=counts.get("failed", 0),
            quarantined=counts.get("quarantined", 0),
        )

    def drained(self) -> bool:
        """True once every cell is terminal (done/failed/quarantined)."""
        return self.stats().live == 0

    def health(self, now: Optional[float] = None) -> QueueHealth:
        """Counts plus per-lease ages, in one consistent read.

        Purely observational — nothing is reclaimed or mutated, so a
        monitor may poll this as often as it likes without perturbing
        the lease protocol.
        """
        now = time.time() if now is None else now
        lease_duration = self.settings.lease_duration
        conn = self._connect()
        try:
            counts = dict(conn.execute(
                "SELECT status, COUNT(*) FROM cells GROUP BY status"
            ).fetchall())
            rows = conn.execute(
                "SELECT idx, owner, attempts, lease_deadline FROM cells "
                "WHERE status='leased' ORDER BY idx"
            ).fetchall()
        finally:
            conn.close()
        stats = QueueStats(
            open=counts.get("open", 0),
            leased=counts.get("leased", 0),
            done=counts.get("done", 0),
            failed=counts.get("failed", 0),
            quarantined=counts.get("quarantined", 0),
        )
        leases = tuple(
            LeaseHealth(
                idx=idx, owner=owner, attempts=attempts,
                age=now - (deadline - lease_duration),
                remaining=deadline - now,
            )
            for idx, owner, attempts, deadline in rows
        )
        return QueueHealth(stats=stats, leases=leases, at=now)

    def rows(self) -> list[tuple]:
        """Every cell row, in grid order (for tests and tooling)."""
        conn = self._connect()
        try:
            return conn.execute(
                "SELECT idx, status, owner, last_owner, attempts, "
                "error_type, message, result_path, bundle_path "
                "FROM cells ORDER BY idx"
            ).fetchall()
        finally:
            conn.close()

    def collect(self):
        """Assemble the drained queue into a :class:`SweepResult`.

        Rows are read in grid order, so the resulting ``points`` and
        ``failures`` iterate exactly like serial ``Sweep.run()`` output.
        A cell that is somehow still live (collect before drain) is
        reported as an ``Incomplete`` failure rather than hidden.
        """
        from repro.harness.sweep import SweepResult

        grid = self.load_grid()
        result = SweepResult()
        for (idx, status, _owner, last_owner, attempts, error_type,
             message, result_path, bundle_path) in self.rows():
            key, _args = grid[idx]
            if status == "done":
                result.points[key] = load_result(result_path)
            elif status in ("failed", "quarantined"):
                result.failures[key] = FailedRun(
                    workload=key.workload, policy=key.policy,
                    error_type=error_type or status,
                    message=message or "",
                    bundle_path=bundle_path,
                    attempts=max(attempts, 1),
                    last_owner=last_owner,
                )
            else:
                result.failures[key] = FailedRun(
                    workload=key.workload, policy=key.policy,
                    error_type="Incomplete",
                    message=f"cell still {status} when collected",
                    attempts=max(attempts, 1),
                    last_owner=last_owner,
                )
        return result
