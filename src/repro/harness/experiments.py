"""Experiment definitions: one function per table and figure of the paper.

Each function runs the required simulations and returns a structured
result object with a ``render()`` method that prints the same rows/series
the paper reports.  The benchmarks under ``benchmarks/`` call these and
assert the paper's qualitative shape (who wins, roughly by what factor,
where the crossovers fall).

The default experiment configuration uses the shrunken
:func:`~repro.config.presets.small_system` and a footprint scale of 0.015
so the whole evaluation regenerates in well under a minute; both are
overridable for higher-fidelity runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config.hyperparams import GriffinHyperParams
from repro.config.presets import NVLINK, small_system
from repro.config.system import SystemConfig
from repro.core.hardware_cost import HardwareCostReport, estimate_hardware_cost
from repro.harness.results import RunResult
from repro.harness.runner import run_workload
from repro.metrics.report import format_table, geometric_mean
from repro.workloads.registry import WORKLOAD_SPECS, list_workloads

DEFAULT_SCALE = 0.015
DEFAULT_SEED = 3


def _config() -> SystemConfig:
    return small_system()


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


@dataclass
class TableResult:
    """A rendered static table (Tables I-III)."""

    title: str
    headers: list
    rows: list

    def render(self) -> str:
        return format_table(self.headers, self.rows, self.title)


def table1_hyperparameters(hyper: Optional[GriffinHyperParams] = None) -> TableResult:
    """Table I: default Griffin hyperparameter configuration."""
    hyper = hyper or GriffinHyperParams()
    return TableResult(
        "Table I: Default Hyperparameter Configuration",
        ["Param", "Value", "Description"],
        [list(row) for row in hyper.table_rows()],
    )


def table2_system_config(config: Optional[SystemConfig] = None) -> TableResult:
    """Table II: multi-GPU system configuration."""
    config = config or SystemConfig()
    return TableResult(
        "Table II: Multi-GPU System Configuration",
        ["Component", "Configuration", "Number per GPU"],
        [list(row) for row in config.table_rows()],
    )


def table3_workloads() -> TableResult:
    """Table III: workloads used to evaluate the Griffin design."""
    rows = [
        [spec.abbrev, spec.name, spec.suite, spec.pattern, f"{spec.memory_mb} MB"]
        for spec in (WORKLOAD_SPECS[a] for a in list_workloads())
    ]
    return TableResult(
        "Table III: Workloads used to evaluate the Griffin design",
        ["Abbv.", "Application", "Benchmark Suite", "Access Pattern", "Memory Size"],
        rows,
    )


# ---------------------------------------------------------------------------
# Per-workload policy comparisons (Figures 2, 8, 9, 11, 12, 13)
# ---------------------------------------------------------------------------


@dataclass
class ComparisonResult:
    """Per-workload results for a set of policies."""

    title: str
    policies: list
    runs: dict = field(default_factory=dict)  # workload -> {policy: RunResult}

    def speedups(self, baseline: str, other: str) -> dict:
        return {
            wl: runs[baseline].cycles / runs[other].cycles
            for wl, runs in self.runs.items()
        }

    def geomean_speedup(self, baseline: str, other: str) -> float:
        return geometric_mean(self.speedups(baseline, other).values())


def _compare(
    title: str,
    policies,
    workloads=None,
    config: Optional[SystemConfig] = None,
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
) -> ComparisonResult:
    result = ComparisonResult(title, list(policies))
    config = config or _config()
    for wl in workloads or list_workloads():
        result.runs[wl] = {
            policy: run_workload(wl, policy, config=config, scale=scale, seed=seed)
            for policy in policies
        }
    return result


def fig2_first_touch_imbalance(**kwargs) -> ComparisonResult:
    """Figure 2: page placement per GPU under the first-touch policy."""
    result = _compare("Figure 2: first-touch page placement", ["baseline"], **kwargs)
    return result


def render_fig2(result: ComparisonResult) -> str:
    rows = []
    for wl, runs in result.runs.items():
        occ = runs["baseline"].occupancy
        rows.append([wl] + [f"{p:.1f}%" for p in occ.percentages()])
    num_gpus = len(next(iter(result.runs.values()))["baseline"].occupancy.pages_per_gpu)
    headers = ["Workload"] + [f"GPU{i}" for i in range(num_gpus)]
    return format_table(headers, rows, result.title)


def fig8_occupancy_balance(**kwargs) -> ComparisonResult:
    """Figure 8: page distribution, baseline vs. Griffin."""
    return _compare(
        "Figure 8: occupancy balancing improvement", ["baseline", "griffin"], **kwargs
    )


def render_fig8(result: ComparisonResult) -> str:
    rows = []
    for wl, runs in result.runs.items():
        b = runs["baseline"].occupancy.percentages()
        g = runs["griffin"].occupancy.percentages()
        rows.append(
            [wl,
             " / ".join(f"{p:.0f}" for p in b),
             " / ".join(f"{p:.0f}" for p in g),
             f"{runs['baseline'].imbalance():.2f}",
             f"{runs['griffin'].imbalance():.2f}"]
        )
    return format_table(
        ["Workload", "Baseline %/GPU", "Griffin %/GPU", "Base imb.", "Griffin imb."],
        rows,
        result.title,
    )


def fig9_tlb_shootdowns(**kwargs) -> ComparisonResult:
    """Figure 9: number of TLB shootdowns, baseline vs. Griffin."""
    return _compare(
        "Figure 9: TLB shootdowns (normalized to baseline)",
        ["baseline", "griffin"],
        **kwargs,
    )


def render_fig9(result: ComparisonResult) -> str:
    # "Pages/round" is the amortization CPMS batching buys: Griffin's
    # rounds shrink while each CPU round covers a whole fault batch.
    rows = []
    for wl, runs in result.runs.items():
        base = runs["baseline"].total_shootdowns
        grif = runs["griffin"].total_shootdowns
        rows.append([
            wl, base, grif,
            f"{grif / base:.2f}" if base else "n/a",
            _pages_per_round(runs["baseline"]),
            _pages_per_round(runs["griffin"]),
        ])
    return format_table(
        ["Workload", "Baseline", "Griffin", "Normalized",
         "Base pages/round", "Griffin pages/round"],
        rows, result.title,
    )


def _pages_per_round(run) -> str:
    """Mean pages covered per CPU shootdown round ('n/a' without rounds)."""
    if not run.cpu_shootdowns:
        return "n/a"
    return f"{run.cpu_pages_covered / run.cpu_shootdowns:.1f}"


def fig11_acud_vs_flush(**kwargs) -> ComparisonResult:
    """Figure 11: Griffin+Flush vs. Griffin+ACUD."""
    return _compare(
        "Figure 11: Griffin+Flushing vs Griffin+ACUD",
        ["griffin_flush", "griffin"],
        **kwargs,
    )


def render_fig11(result: ComparisonResult) -> str:
    rows = []
    for wl, runs in result.runs.items():
        flush = runs["griffin_flush"].cycles
        acud = runs["griffin"].cycles
        rows.append([wl, f"{flush / acud:.2f}"])
    rows.append(["geomean", f"{result.geomean_speedup('griffin_flush', 'griffin'):.2f}"])
    return format_table(["Workload", "ACUD speedup over Flush"], rows, result.title)


def fig12_overall_speedup(**kwargs) -> ComparisonResult:
    """Figure 12: speedup of Griffin versus the baseline design."""
    return _compare(
        "Figure 12: speedup of Griffin versus the Baseline design",
        ["baseline", "griffin"],
        **kwargs,
    )


def render_fig12(result: ComparisonResult) -> str:
    rows = []
    for wl, sp in result.speedups("baseline", "griffin").items():
        rows.append([wl, f"{sp:.2f}"])
    rows.append(["geomean", f"{result.geomean_speedup('baseline', 'griffin'):.2f}"])
    return format_table(["Workload", "Speedup"], rows, result.title)


def fig13_high_bandwidth(**kwargs) -> ComparisonResult:
    """Figure 13: Griffin vs. baseline with an NVLink-class fabric."""
    kwargs.setdefault("config", _config().with_link(NVLINK))
    return _compare(
        "Figure 13: speedup with a higher bandwidth interconnect",
        ["baseline", "griffin"],
        **kwargs,
    )


render_fig13 = render_fig12


# ---------------------------------------------------------------------------
# Timeline experiments (Figures 1 and 10)
# ---------------------------------------------------------------------------


@dataclass
class TimelineResult:
    """Bucketized access split for one page, plus its migrations."""

    title: str
    page: int
    series: list  # (bucket_start, [percent per gpu])
    migrations: list  # (time, src, dst)

    def render(self) -> str:
        num_gpus = len(self.series[0][1]) if self.series else 0
        headers = ["t (cycles)"] + [f"GPU{i} %" for i in range(num_gpus)]
        rows = [
            [int(t)] + [f"{p:.0f}" for p in pct] for t, pct in self.series
        ]
        table = format_table(headers, rows, f"{self.title} (page {self.page})")
        if self.migrations:
            moves = ", ".join(
                f"t={int(t)}: {('CPU' if s < 0 else f'GPU{s}')}->GPU{d}"
                for t, s, d in self.migrations
            )
            table += f"\nPage location changes: {moves}"
        return table


def _hot_shifting_page(
    workload: str, config: SystemConfig, scale: float, seed: int
) -> int:
    probe = run_workload(
        workload, "baseline", config=config, scale=scale, seed=seed,
        keep_timeline=True,
    )
    pages = probe.timeline.hottest_shifting_pages(1)
    if not pages:
        pages = probe.timeline.hottest_shared_pages(1)
    return pages[0]


def fig1_page_access_timeline(
    workload: str = "SC",
    config: Optional[SystemConfig] = None,
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    bucket: int = 100_000,
) -> TimelineResult:
    """Figure 1: distribution of accesses to one page over time (baseline).

    Pass 1 finds the hottest owner-shifting page; pass 2 (same seed, same
    trace) records its bucketized per-GPU access split.
    """
    config = config or _config()
    page = _hot_shifting_page(workload, config, scale, seed)
    run = run_workload(
        workload, "baseline", config=config, scale=scale, seed=seed,
        watch_pages=[page], timeline_bucket=bucket, keep_timeline=True,
    )
    return TimelineResult(
        "Figure 1: access distribution under first-touch",
        page,
        run.timeline.series_percentages(page),
        [(e.time, e.src, e.dst) for e in run.migration_events if e.page == page],
    )


def fig10_dpc_migration(
    workload: str = "SC",
    config: Optional[SystemConfig] = None,
    scale: float = DEFAULT_SCALE,
    seed: int = DEFAULT_SEED,
    bucket: int = 100_000,
) -> TimelineResult:
    """Figure 10: Griffin's DPC migrating the hot page to follow accessors."""
    config = config or _config()
    page = _hot_shifting_page(workload, config, scale, seed)
    run = run_workload(
        workload, "griffin", config=config, scale=scale, seed=seed,
        watch_pages=[page], timeline_bucket=bucket, keep_timeline=True,
    )
    return TimelineResult(
        "Figure 10: access distribution and page location under Griffin",
        page,
        run.timeline.series_percentages(page),
        [(e.time, e.src, e.dst) for e in run.migration_events if e.page == page],
    )


# ---------------------------------------------------------------------------
# Hardware cost (Section V)
# ---------------------------------------------------------------------------


def hardware_cost_report(
    config: Optional[SystemConfig] = None,
    hyper: Optional[GriffinHyperParams] = None,
) -> HardwareCostReport:
    """Section V's hardware-cost estimates (2 200 B of DPC tables per GPU)."""
    return estimate_hardware_cost(
        config or SystemConfig(), hyper or GriffinHyperParams()
    )
