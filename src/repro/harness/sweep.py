"""Declarative parameter sweeps over (workload x policy x config x hyper).

``Sweep`` runs the full cross-product of its axes and returns a
``SweepResult`` that slices, aggregates, and renders — the formalization
of what the benchmark files do by hand, available to library users::

    from repro.harness.sweep import Sweep

    sweep = Sweep(
        workloads=["MT", "SC"],
        policies=["baseline", "griffin"],
        configs={"pcie": small_system(), "nvlink": nvlink_system()},
    )
    result = sweep.run(scale=0.01, seed=3)
    print(result.table("cycles"))
    print(result.speedup_table("baseline", "griffin"))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config.hyperparams import GriffinHyperParams
from repro.config.presets import small_system
from repro.config.system import SystemConfig
from repro.harness.results import FailedRun, RunResult
from repro.harness.runner import run_workload
from repro.metrics.report import format_table, geometric_mean

_METRICS = {
    "cycles": lambda r: r.cycles,
    "local_fraction": lambda r: r.local_fraction,
    "shootdowns": lambda r: r.total_shootdowns,
    "migrations": lambda r: r.total_migrations,
    "gpu_to_gpu": lambda r: r.gpu_to_gpu_migrations,
    "imbalance": lambda r: r.imbalance(),
}


@dataclass(frozen=True)
class SweepKey:
    """Coordinates of one point in the sweep grid."""

    workload: str
    policy: str
    config: str
    hyper: str
    fault: str = "none"


@dataclass
class SweepResult:
    """All runs of one sweep, indexed by :class:`SweepKey`.

    Attributes:
        points: SweepKey -> RunResult for every completed grid point.
        failures: SweepKey -> :class:`FailedRun` for points that stalled,
            blew their event budget, or raised.  A sweep always completes;
            a bad cell never takes the grid down with it.
    """

    points: dict = field(default_factory=dict)  # SweepKey -> RunResult
    failures: dict = field(default_factory=dict)  # SweepKey -> FailedRun

    def get(self, workload: str, policy: str, config: str = "default",
            hyper: str = "default", fault: str = "none") -> RunResult:
        return self.points[SweepKey(workload, policy, config, hyper, fault)]

    def failure_table(self) -> str:
        """Plain-text table of the failed grid points (empty grid -> '')."""
        if not self.failures:
            return ""
        rows = [
            [k.workload, k.policy, k.config, k.fault, f.error_type, f.message]
            for k, f in self.failures.items()
        ]
        return format_table(
            ["Workload", "Policy", "Config", "Fault", "Error", "Message"],
            rows, "Sweep failures",
        )

    def metric(self, name: str):
        """(key, value) pairs for a named metric."""
        fn = _METRICS.get(name)
        if fn is None:
            raise KeyError(
                f"unknown metric {name!r}; available: {', '.join(_METRICS)}"
            )
        return [(key, fn(run)) for key, run in self.points.items()]

    def table(self, metric: str = "cycles") -> str:
        """Plain-text table of one metric over the whole grid."""
        rows = [
            [k.workload, k.policy, k.config, k.hyper,
             f"{v:,.2f}" if isinstance(v, float) else v]
            for k, v in self.metric(metric)
        ]
        return format_table(
            ["Workload", "Policy", "Config", "Hyper", metric], rows,
            f"Sweep: {metric}",
        )

    def speedups(self, baseline_policy: str, other_policy: str,
                 config: str = "default", hyper: str = "default") -> dict:
        """workload -> speedup of ``other`` over ``baseline``."""
        out = {}
        for key, run in self.points.items():
            if (key.policy, key.config, key.hyper) != (
                baseline_policy, config, hyper
            ):
                continue
            other = self.points.get(
                SweepKey(key.workload, other_policy, config, hyper, key.fault)
            )
            if other is not None:
                out[key.workload] = run.cycles / other.cycles
        return out

    def speedup_table(self, baseline_policy: str, other_policy: str,
                      config: str = "default", hyper: str = "default") -> str:
        speedups = self.speedups(baseline_policy, other_policy, config, hyper)
        rows = [[wl, f"{s:.2f}"] for wl, s in speedups.items()]
        if speedups:
            rows.append(["geomean", f"{geometric_mean(speedups.values()):.2f}"])
        return format_table(
            ["Workload", f"{other_policy} vs {baseline_policy}"], rows,
            f"Sweep speedups ({config}, {hyper})",
        )


@dataclass
class Sweep:
    """A sweep definition: the cross-product of four axes.

    Attributes:
        workloads: Table III abbreviations.
        policies: Policy names.
        configs: Named system configurations (default: one
            ``small_system()`` under the name "default").
        hypers: Named hyperparameter sets (default: the calibrated set
            under the name "default").
        faults: Named fault-injection plans (default: one fault-free run
            under the name "none"; a ``None`` value means no faults).
    """

    workloads: list
    policies: list
    configs: Optional[dict] = None
    hypers: Optional[dict] = None
    faults: Optional[dict] = None

    def size(self) -> int:
        configs = self.configs or {"default": None}
        hypers = self.hypers or {"default": None}
        faults = self.faults or {"none": None}
        return (len(self.workloads) * len(self.policies)
                * len(configs) * len(hypers) * len(faults))

    def _grid(self, scale: float, seed: int, max_events, stall_threshold):
        configs = self.configs or {"default": small_system()}
        hypers = self.hypers or {"default": GriffinHyperParams.calibrated()}
        faults = self.faults or {"none": None}
        for config_name, config in configs.items():
            for hyper_name, hyper in hypers.items():
                for fault_name, fault in faults.items():
                    for workload in self.workloads:
                        for policy in self.policies:
                            key = SweepKey(workload, policy, config_name,
                                           hyper_name, fault_name)
                            yield key, (workload, policy, config, hyper,
                                        scale, seed, fault, max_events,
                                        stall_threshold)

    def run(self, scale: float = 0.015, seed: int = 3,
            progress=None, workers: int = 1,
            max_events_per_run: Optional[int] = None,
            stall_threshold: Optional[int] = 1_000_000,
            chunk_size: int = 0) -> SweepResult:
        """Execute every grid point; optionally report progress.

        Args:
            scale / seed: Forwarded to every run.
            progress: Optional callable ``(done, total, key)`` invoked
                after each point.
            workers: Process count.  Grid points are independent
                simulations, so they parallelize perfectly; results are
                identical regardless of worker count (every run is
                deterministic).
            max_events_per_run: Event budget for each grid point — the
                sweep-level no-hang guarantee.  A point that exhausts it
                lands in ``SweepResult.failures``.
            stall_threshold: Per-run livelock watchdog (None disables).
            chunk_size: Grid points per submitted process task.  0 picks
                roughly ``total / (4 * workers)`` so each worker sees a
                few chunks (load balance) while pickling overhead is
                amortized on large grids.  Results are identical at any
                chunk size.

        A point that raises is recorded as a :class:`FailedRun` in
        ``SweepResult.failures``; the rest of the grid still runs.
        """
        result = SweepResult()
        total = self.size()
        grid = list(self._grid(scale, seed, max_events_per_run,
                               stall_threshold))

        if workers <= 1:
            for done, (key, args) in enumerate(grid, start=1):
                self._record(result, key, _run_point_safe(args))
                if progress is not None:
                    progress(done, total, key)
            return result

        from concurrent.futures import ProcessPoolExecutor

        if chunk_size <= 0:
            chunk_size = max(1, total // (4 * workers))
        chunks = [grid[i:i + chunk_size]
                  for i in range(0, len(grid), chunk_size)]
        done = 0
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                (chunk, pool.submit(_run_chunk, [args for _, args in chunk]))
                for chunk in chunks
            ]
            for chunk, future in futures:
                try:
                    outcomes = future.result()
                except Exception as exc:  # worker died (e.g. OOM-kill)
                    outcomes = [exc] * len(chunk)
                for (key, _), outcome in zip(chunk, outcomes):
                    self._record(result, key, outcome)
                    done += 1
                    if progress is not None:
                        progress(done, total, key)
        return result

    @staticmethod
    def _record(result: SweepResult, key: SweepKey, outcome) -> None:
        if isinstance(outcome, Exception):
            result.failures[key] = FailedRun.from_exception(
                key.workload, key.policy, outcome
            )
        else:
            result.points[key] = outcome


def _run_point_safe(args):
    """Run one grid point, returning the exception instead of raising."""
    try:
        return _run_point(args)
    except Exception as exc:
        return exc


def _run_chunk(args_list: list) -> list:
    """Execute several grid points in one worker task.

    Returning per-point outcomes (result or exception) keeps the
    one-bad-cell-never-kills-the-grid guarantee under chunking.
    """
    return [_run_point_safe(args) for args in args_list]


def _run_point(args) -> RunResult:
    """Execute one grid point (module-level for multiprocessing pickling)."""
    (workload, policy, config, hyper, scale, seed,
     fault, max_events, stall_threshold) = args
    return run_workload(
        workload, policy, config=config, hyper=hyper, scale=scale, seed=seed,
        faults=fault, max_events=max_events, stall_threshold=stall_threshold,
    )
