"""Declarative parameter sweeps over (workload x policy x config x hyper).

``Sweep`` runs the full cross-product of its axes and returns a
``SweepResult`` that slices, aggregates, and renders — the formalization
of what the benchmark files do by hand, available to library users::

    from repro.harness.sweep import Sweep

    sweep = Sweep(
        workloads=["MT", "SC"],
        policies=["baseline", "griffin"],
        configs={"pcie": small_system(), "nvlink": nvlink_system()},
    )
    result = sweep.run(scale=0.01, seed=3)
    print(result.table("cycles"))
    print(result.speedup_table("baseline", "griffin"))

Snapshot-fork execution
-----------------------

Most sweeps vary *late-binding* knobs — hyperparameters and policy
fields the simulation first consults at its periodic migration phase
(see ``LATE_HYPER_FIELDS`` / ``LATE_POLICY_FIELDS`` in
:mod:`repro.system.machine`).  Every cell in such a group replays an
identical warm-up: same trace, same faults, same event stream up to the
first migration decision.  With ``fork=True`` (the default) the sweep
runs that shared prefix **once** per group, snapshots the machine at
``migration_period - 1`` cycles, and forks each cell from the snapshot
via :class:`repro.sim.snapshot.MachineSnapshot`.  Forked cells are
byte-identical to cold runs — the parity suite pins this — so results
never depend on ``fork``, ``workers``, or ``chunk_size``.

Cells that cannot share a prefix run cold, exactly as before: object
workloads (no stable fingerprint), predictive policies (they consume
``lambda_t`` during warm-up), unknown policies (the cold path owns the
error message), and groups of one (nothing to amortize).

One observable asymmetry: a forked cell that exhausts ``max_events``
reports the *continuation* budget in its failure message, not the full
one.  The stall happens after the same total event count either way.

Caching
-------

``cache_dir`` enables an on-disk cache keyed by a cell fingerprint
(canonical JSON of the cell's full configuration) combined with
:func:`repro.perf.fingerprint.code_fingerprint`, so any source change
invalidates every entry.  ``resume=True`` loads completed cells from the
cache instead of re-running them — a killed sweep re-runs only what it
had not finished.  Group snapshots are cached the same way; failures are
never cached.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional

from repro.config.hyperparams import GriffinHyperParams
from repro.config.presets import small_system
from repro.config.system import SystemConfig
from repro.core.policies import get_policy
from repro.harness.results import FailedRun, RunResult
from repro.harness.runner import harvest_result, prepare_run, run_workload
from repro.metrics.report import format_table, geometric_mean
from repro.system.machine import LATE_HYPER_FIELDS, LATE_POLICY_FIELDS

_METRICS = {
    "cycles": lambda r: r.cycles,
    "local_fraction": lambda r: r.local_fraction,
    "shootdowns": lambda r: r.total_shootdowns,
    "migrations": lambda r: r.total_migrations,
    "gpu_to_gpu": lambda r: r.gpu_to_gpu_migrations,
    "imbalance": lambda r: r.imbalance(),
}


@dataclass(frozen=True)
class SweepKey:
    """Coordinates of one point in the sweep grid."""

    workload: str
    policy: str
    config: str
    hyper: str
    fault: str = "none"


@dataclass
class SweepResult:
    """All runs of one sweep, indexed by :class:`SweepKey`.

    Attributes:
        points: SweepKey -> RunResult for every completed grid point.
        failures: SweepKey -> :class:`FailedRun` for points that stalled,
            blew their event budget, or raised.  A sweep always completes;
            a bad cell never takes the grid down with it.
        cache_hits: Cells served from the on-disk result cache.
        cache_misses: Cells executed while a cache was attached.
        forked_cells: Cells continued from a shared prefix snapshot.
        cold_cells: Cells simulated from cycle zero.
        fork_groups: Shared-prefix groups actually forked.
        prefix_events: Events executed across all shared prefixes; each
            group's other members skipped roughly this many each.
    """

    points: dict = field(default_factory=dict)  # SweepKey -> RunResult
    failures: dict = field(default_factory=dict)  # SweepKey -> FailedRun
    cache_hits: int = 0
    cache_misses: int = 0
    forked_cells: int = 0
    cold_cells: int = 0
    fork_groups: int = 0
    prefix_events: int = 0

    def get(self, workload: str, policy: str, config: str = "default",
            hyper: str = "default", fault: str = "none") -> RunResult:
        return self.points[SweepKey(workload, policy, config, hyper, fault)]

    def failure_table(self) -> str:
        """Plain-text table of the failed grid points (empty grid -> '')."""
        if not self.failures:
            return ""
        rows = [
            [k.workload, k.policy, k.config, k.fault, f.error_type,
             f.attempts, f.message, f.bundle_path or "-"]
            for k, f in self.failures.items()
        ]
        return format_table(
            ["Workload", "Policy", "Config", "Fault", "Error", "Attempts",
             "Message", "Bundle"],
            rows, "Sweep failures",
        )

    def metric(self, name: str):
        """(key, value) pairs for a named metric."""
        fn = _METRICS.get(name)
        if fn is None:
            raise KeyError(
                f"unknown metric {name!r}; available: {', '.join(_METRICS)}"
            )
        return [(key, fn(run)) for key, run in self.points.items()]

    def table(self, metric: str = "cycles") -> str:
        """Plain-text table of one metric over the whole grid."""
        rows = [
            [k.workload, k.policy, k.config, k.hyper,
             f"{v:,.2f}" if isinstance(v, float) else v]
            for k, v in self.metric(metric)
        ]
        return format_table(
            ["Workload", "Policy", "Config", "Hyper", metric], rows,
            f"Sweep: {metric}",
        )

    def speedups(self, baseline_policy: str, other_policy: str,
                 config: str = "default", hyper: str = "default") -> dict:
        """workload -> speedup of ``other`` over ``baseline``."""
        out = {}
        for key, run in self.points.items():
            if (key.policy, key.config, key.hyper) != (
                baseline_policy, config, hyper
            ):
                continue
            other = self.points.get(
                SweepKey(key.workload, other_policy, config, hyper, key.fault)
            )
            if other is not None:
                out[key.workload] = run.cycles / other.cycles
        return out

    def speedup_table(self, baseline_policy: str, other_policy: str,
                      config: str = "default", hyper: str = "default") -> str:
        speedups = self.speedups(baseline_policy, other_policy, config, hyper)
        rows = [[wl, f"{s:.2f}"] for wl, s in speedups.items()]
        if speedups:
            rows.append(["geomean", f"{geometric_mean(speedups.values()):.2f}"])
        return format_table(
            ["Workload", f"{other_policy} vs {baseline_policy}"], rows,
            f"Sweep speedups ({config}, {hyper})",
        )


# ----------------------------------------------------------------------
# Fingerprints and fork planning
# ----------------------------------------------------------------------


def _canon(value):
    """Reduce configs to canonical JSON-able structure for hashing."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canon(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_canon(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _canon(item) for key, item in value.items()}
    return value


def _digest(payload: dict) -> str:
    text = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _resolve_variant(args):
    """(PolicyConfig, GriffinHyperParams) for a cell, or None if the cell
    cannot be resolved eagerly (the cold path owns its error message)."""
    (workload, policy, _config, hyper, _scale, _seed,
     _fault, _max_events, _stall, _checks, _bundle_dir) = args
    if not isinstance(workload, str):
        return None
    try:
        policy = get_policy(policy) if isinstance(policy, str) else policy
    except KeyError:
        return None
    if hyper is None:
        hyper = GriffinHyperParams.calibrated()
    return policy, hyper


def cell_fingerprint(args, code_fp: str = "") -> Optional[str]:
    """Stable identity of one grid cell, or None if it has none.

    Hashes every input that reaches the simulation — workload name,
    policy, system config, hyperparameters, faults, scale, seed, and the
    run budgets — plus the source-tree fingerprint, so a cached result is
    valid exactly when a fresh run would be byte-identical to it.
    """
    resolved = _resolve_variant(args)
    if resolved is None:
        return None
    policy, hyper = resolved
    (workload, _policy, config, _hyper, scale, seed,
     fault, max_events, stall_threshold, checks, _bundle_dir) = args
    return _digest({
        "workload": workload,
        "policy": _canon(policy),
        "config": _canon(config),
        "hyper": _canon(hyper),
        "fault": _canon(fault),
        "scale": scale,
        "seed": seed,
        "max_events": max_events,
        "stall_threshold": stall_threshold,
        # bundle_dir is where evidence lands, not a simulation input; the
        # sanitizer config is hashed because it decides whether a cell
        # fails (a violation) or succeeds.
        "checks": _canon(checks) if checks is not None else None,
        "code": code_fp,
    })


def group_fingerprint(args, code_fp: str = "") -> Optional[str]:
    """Shared-prefix identity of a cell, or None if it cannot fork.

    Masks the late-binding fields — two cells with the same group
    fingerprint replay an identical event stream up to the migration
    phase, so one prefix snapshot serves both.  Predictive policies
    consume ``lambda_t`` during warm-up and therefore never group.
    """
    resolved = _resolve_variant(args)
    if resolved is None:
        return None
    policy, hyper = resolved
    if policy.predictive:
        return None
    (workload, _policy, config, _hyper, scale, seed,
     fault, max_events, stall_threshold, checks, _bundle_dir) = args
    if checks is not None and checks.enabled:
        # Checked cells run cold: the sanitizer attaches before start()
        # and tracks protocol state (drain phases, queued faults) a
        # mid-run fork could not reconstruct.
        return None
    return _digest({
        "workload": workload,
        "policy": {
            f.name: _canon(getattr(policy, f.name))
            for f in dataclasses.fields(policy)
            if f.name not in LATE_POLICY_FIELDS
        },
        "hyper": {
            f.name: _canon(getattr(hyper, f.name))
            for f in dataclasses.fields(hyper)
            if f.name not in LATE_HYPER_FIELDS
        },
        "config": _canon(config),
        "fault": _canon(fault),
        "scale": scale,
        "seed": seed,
        "max_events": max_events,
        "stall_threshold": stall_threshold,
        "code": code_fp,
    })


class SpecError(ValueError):
    """A JSON sweep spec failed validation.

    The service's admission path turns this into HTTP 400; the message
    is user-facing, so every raise names the offending field.
    """


# Top-level keys a JSON sweep spec may carry.  ``deadline_s`` is consumed
# by the service (per-request wall clock), not by the sweep itself, but
# it must not trip the unknown-key check.
_SPEC_KEYS = frozenset({
    "workloads", "policies", "configs", "hypers", "faults",
    "scale", "seed", "max_events", "stall_threshold", "deadline_s",
})
_CONFIG_SPEC_KEYS = frozenset({"preset", "gpus", "fabric"})


def _config_from_spec(name: str, cfg: Optional[dict]):
    from repro.config.presets import (
        NVLINK,
        PCIE_V4,
        paper_system,
        small_system,
        tiny_system,
    )

    presets = {"tiny": tiny_system, "small": small_system,
               "paper": paper_system}
    cfg = cfg or {}
    if not isinstance(cfg, dict):
        raise SpecError(f"configs[{name!r}] must be an object")
    unknown = set(cfg) - _CONFIG_SPEC_KEYS
    if unknown:
        raise SpecError(
            f"configs[{name!r}] has unknown keys {sorted(unknown)}; "
            f"allowed: {sorted(_CONFIG_SPEC_KEYS)}"
        )
    preset = cfg.get("preset", "small")
    if preset not in presets:
        raise SpecError(
            f"configs[{name!r}].preset must be one of "
            f"{sorted(presets)}, got {preset!r}"
        )
    gpus = cfg.get("gpus")
    if gpus is not None and (not isinstance(gpus, int) or gpus < 1):
        raise SpecError(f"configs[{name!r}].gpus must be a positive integer")
    fabric = cfg.get("fabric", "pcie")
    if fabric not in ("pcie", "nvlink"):
        raise SpecError(
            f"configs[{name!r}].fabric must be 'pcie' or 'nvlink'"
        )
    base = presets[preset]() if gpus is None else presets[preset](gpus)
    return base.with_link(NVLINK if fabric == "nvlink" else PCIE_V4)


def _names_from_spec(spec: dict, key: str, known, kind: str) -> list:
    values = spec.get(key)
    if (not isinstance(values, list) or not values
            or not all(isinstance(v, str) for v in values)):
        raise SpecError(f"{key!r} must be a non-empty list of {kind} names")
    unknown = [v for v in values if v not in known]
    if unknown:
        raise SpecError(
            f"unknown {kind}(s) {unknown}; available: {sorted(known)}"
        )
    return list(values)


def sweep_from_spec(spec: dict) -> tuple["Sweep", dict]:
    """Build a :class:`Sweep` plus run parameters from a JSON-shaped dict.

    This is the wire format ``repro serve`` accepts.  Validation is
    eager and strict — unknown keys, unknown workloads/policies, and bad
    types all raise :class:`SpecError` with a message naming the field —
    so a bad submission is rejected at admission, before anything is
    enqueued.  Returns ``(sweep, run_params)`` where ``run_params`` are
    keyword arguments for :meth:`Sweep.run` (``scale``, ``seed``,
    ``max_events_per_run``, ``stall_threshold``).

    Spec shape (everything but ``workloads``/``policies`` optional)::

        {"workloads": ["MT", "SC"], "policies": ["baseline", "griffin"],
         "configs": {"tiny": {"preset": "tiny", "gpus": 2,
                              "fabric": "pcie"}},
         "hypers": {"eager": {"min_pages_per_source": 1}},
         "faults": {"chaos": {"migration_drop_rate": 0.3}},
         "scale": 0.008, "seed": 5, "max_events": 5000000}
    """
    from repro.config.faults import FaultConfig
    from repro.core.policies import list_policies
    from repro.workloads.registry import list_workloads

    if not isinstance(spec, dict):
        raise SpecError("sweep spec must be a JSON object")
    unknown = set(spec) - _SPEC_KEYS
    if unknown:
        raise SpecError(
            f"unknown spec keys {sorted(unknown)}; "
            f"allowed: {sorted(_SPEC_KEYS)}"
        )
    workloads = _names_from_spec(spec, "workloads", set(list_workloads()),
                                 "workload")
    policies = _names_from_spec(spec, "policies", set(list_policies()),
                                "policy")

    configs = None
    if spec.get("configs") is not None:
        if not isinstance(spec["configs"], dict) or not spec["configs"]:
            raise SpecError("'configs' must be a non-empty object")
        configs = {
            str(name): _config_from_spec(name, cfg)
            for name, cfg in spec["configs"].items()
        }

    hypers = None
    if spec.get("hypers") is not None:
        if not isinstance(spec["hypers"], dict) or not spec["hypers"]:
            raise SpecError("'hypers' must be a non-empty object")
        base = GriffinHyperParams.calibrated()
        fields = {f.name for f in dataclasses.fields(GriffinHyperParams)}
        hypers = {}
        for name, overrides in spec["hypers"].items():
            overrides = overrides or {}
            if not isinstance(overrides, dict):
                raise SpecError(f"hypers[{name!r}] must be an object")
            bad = set(overrides) - fields
            if bad:
                raise SpecError(
                    f"hypers[{name!r}] has unknown fields {sorted(bad)}"
                )
            hypers[str(name)] = base.with_overrides(**overrides)

    faults = None
    if spec.get("faults") is not None:
        if not isinstance(spec["faults"], dict) or not spec["faults"]:
            raise SpecError("'faults' must be a non-empty object")
        fields = {f.name for f in dataclasses.fields(FaultConfig)}
        faults = {}
        for name, plan in spec["faults"].items():
            if plan is None:
                faults[str(name)] = None
                continue
            if not isinstance(plan, dict):
                raise SpecError(f"faults[{name!r}] must be an object or null")
            bad = set(plan) - fields
            if bad:
                raise SpecError(
                    f"faults[{name!r}] has unknown fields {sorted(bad)}"
                )
            try:
                faults[str(name)] = FaultConfig(**plan)
            except (TypeError, ValueError) as exc:
                raise SpecError(f"faults[{name!r}]: {exc}") from exc

    def _number(key, default, kind, minimum=None):
        value = spec.get(key, default)
        if value is None:
            return None
        if not isinstance(value, kind) or isinstance(value, bool):
            raise SpecError(f"{key!r} must be a number")
        if minimum is not None and value < minimum:
            raise SpecError(f"{key!r} must be >= {minimum}")
        return value

    run_params = {
        "scale": float(_number("scale", 0.015, (int, float), 1e-6)),
        "seed": _number("seed", 3, int, 0),
        "max_events_per_run": _number("max_events", None, int, 1),
        "stall_threshold": _number("stall_threshold", 1_000_000, int, 1),
    }
    sweep = Sweep(workloads=workloads, policies=policies,
                  configs=configs, hypers=hypers, faults=faults)
    return sweep, run_params


def partition_cached_cells(cells, cache) -> tuple[list, list]:
    """Split planned queue cells into cache hits and cells still to run.

    ``cells`` is :func:`plan_queue_cells` output; ``cache`` a
    :class:`repro.harness.io.SweepResultCache`.  Returns ``(cached,
    missing)`` where ``cached`` holds ``(grid_index, key, fingerprint,
    RunResult)`` for every cell already present in the fingerprint cache
    and ``missing`` the remaining planned cells (grid order preserved).
    This is the partial-grid submission path: identical resubmissions
    are served entirely from ``cached`` and enqueue nothing.

    Group fingerprints are deliberately left as planned even when cache
    hits shrink a fork group below two members: the serial oracle runs
    the full grid and forks such a cell, so keeping the plan keeps the
    budget-exhaustion failure message (which quotes the continuation
    budget) byte-identical to serial.
    """
    cached: list = []
    missing: list = []
    for index, (key, args, fingerprint, group_fp) in enumerate(cells):
        hit = cache.load(fingerprint) if fingerprint is not None else None
        if hit is not None:
            cached.append((index, key, fingerprint, hit))
        else:
            missing.append((key, args, fingerprint, group_fp))
    return cached, missing


def plan_queue_cells(grid, code_fp: str = "", fork: bool = True) -> list:
    """Queue rows ``(key, args, fingerprint, group_fp)`` for a grid.

    Mirrors the in-process executor's fork plan exactly: a cell keeps
    its group fingerprint only when at least two cells share it (a group
    of one amortizes nothing and runs cold).  Matching the plan matters
    beyond speed — a forked cell that exhausts ``max_events`` reports
    the *continuation* budget in its failure message, so queue-executed
    failures stay byte-identical to serial ones.
    """
    group_fps = []
    members: dict[str, int] = {}
    for _key, args in grid:
        group_fp = group_fingerprint(args, code_fp) if fork else None
        group_fps.append(group_fp)
        if group_fp is not None:
            members[group_fp] = members.get(group_fp, 0) + 1
    return [
        (key, args, cell_fingerprint(args, code_fp),
         group_fp if group_fp is not None and members[group_fp] >= 2 else None)
        for (key, args), group_fp in zip(grid, group_fps)
    ]


@dataclass(frozen=True)
class _WorkloadMeta:
    """Just enough workload identity for :func:`harvest_result`.

    Forked machines travel without their workload object; harvesting
    needs only ``spec.abbrev`` / ``seed`` / ``scale``, so this shim
    stands in (``spec`` resolves to the instance itself).
    """

    abbrev: str
    seed: int
    scale: float

    @property
    def spec(self) -> "_WorkloadMeta":
        return self


@dataclass
class Sweep:
    """A sweep definition: the cross-product of four axes.

    Attributes:
        workloads: Table III abbreviations.
        policies: Policy names.
        configs: Named system configurations (default: one
            ``small_system()`` under the name "default").
        hypers: Named hyperparameter sets (default: the calibrated set
            under the name "default").
        faults: Named fault-injection plans (default: one fault-free run
            under the name "none"; a ``None`` value means no faults).
    """

    workloads: list
    policies: list
    configs: Optional[dict] = None
    hypers: Optional[dict] = None
    faults: Optional[dict] = None

    def size(self) -> int:
        configs = self.configs or {"default": None}
        hypers = self.hypers or {"default": None}
        faults = self.faults or {"none": None}
        return (len(self.workloads) * len(self.policies)
                * len(configs) * len(hypers) * len(faults))

    def _grid(self, scale: float, seed: int, max_events, stall_threshold,
              checks=None, bundle_dir=None):
        configs = self.configs or {"default": small_system()}
        hypers = self.hypers or {"default": GriffinHyperParams.calibrated()}
        faults = self.faults or {"none": None}
        for config_name, config in configs.items():
            if config is None:
                config = small_system()
            for hyper_name, hyper in hypers.items():
                if hyper is None:
                    hyper = GriffinHyperParams.calibrated()
                for fault_name, fault in faults.items():
                    for workload in self.workloads:
                        wl_name = (
                            workload if isinstance(workload, str)
                            else getattr(
                                getattr(workload, "spec", None),
                                "abbrev", str(workload),
                            )
                        )
                        for policy in self.policies:
                            key = SweepKey(wl_name, policy, config_name,
                                           hyper_name, fault_name)
                            yield key, (workload, policy, config, hyper,
                                        scale, seed, fault, max_events,
                                        stall_threshold, checks, bundle_dir)

    def run(self, scale: float = 0.015, seed: int = 3,
            progress=None, workers: int = 1,
            max_events_per_run: Optional[int] = None,
            stall_threshold: Optional[int] = 1_000_000,
            chunk_size: int = 0, fork: bool = True,
            cache_dir=None, resume: bool = False,
            checks=None, bundle_dir=None,
            batch: bool = False,
            cell_timeout: Optional[float] = None,
            queue_dir=None, lease_duration: float = 30.0,
            max_attempts: int = 3, backoff_base: float = 1.0,
            backoff_cap: float = 60.0) -> SweepResult:
        """Execute every grid point; optionally report progress.

        Args:
            scale / seed: Forwarded to every run.
            progress: Optional callable ``(done, total, key)`` invoked as
                each point completes (completion order, not grid order).
            workers: Process count.  Grid points are independent
                simulations, so they parallelize perfectly; results are
                identical regardless of worker count (every run is
                deterministic).
            max_events_per_run: Event budget for each grid point — the
                sweep-level no-hang guarantee.  A point that exhausts it
                lands in ``SweepResult.failures``.
            stall_threshold: Per-run livelock watchdog (None disables).
            chunk_size: Grid points per submitted process task.  0 picks
                roughly ``total / (4 * workers)`` so each worker sees a
                few chunks (load balance) while pickling overhead is
                amortized on large grids.  Results are identical at any
                chunk size.
            fork: Share warm-up across cells that differ only in
                late-binding knobs (see module docstring).  Results are
                byte-identical either way; False forces every cell cold.
            cache_dir: Directory for the on-disk result + snapshot cache;
                None disables caching.
            resume: Serve cells already present in ``cache_dir`` from
                disk instead of re-running them.
            checks: Optional :class:`repro.check.CheckConfig` applied to
                every cell.  Checked cells run cold (the sanitizer must
                observe the run from cycle zero) and a violating cell
                lands in ``failures`` like any other error.
            bundle_dir: Crash-bundle directory forwarded to every
                checked cell; each :class:`FailedRun` then records its
                ``bundle_path`` (also shown by :meth:`SweepResult.failure_table`).
            batch: Advance the grid's independent cells through one
                in-process :class:`repro.harness.batch.BatchRunner`
                instead of running them one after another — fork-group
                members all fork up front and interleave; unchecked cold
                cells likewise.  Results are byte-identical to ``batch=
                False`` (the parity suite pins this); checked cells fall
                back to the staged cold path.  Mutually exclusive with
                ``workers > 1`` (process parallelism already amortizes
                the same overheads).

            cell_timeout: Per-cell wall-clock budget in seconds.  Each
                cell then runs cold in its own supervised child process
                that is SIGKILLed past the deadline — the backstop for
                hangs in native/OS code that the in-sim event budgets
                and stall watchdog cannot see.  A timed-out cell lands
                in ``failures`` as ``CellTimeout``; the rest of the grid
                completes.  Results stay byte-identical (cold == forked
                is pinned by the parity suite).  Incompatible with
                ``batch``.
            queue_dir: Execute through a fault-tolerant on-disk
                :class:`repro.harness.queue.SweepQueue` instead of the
                in-process pool.  The grid is materialized as sqlite
                rows; ``workers`` local worker processes drain it, and
                any number of external ``repro worker <queue_dir>``
                processes — on any machine sharing the filesystem — may
                attach at any time.  Results are byte-identical to an
                in-process run; crashed/hung workers are recovered via
                lease expiry (see docs/resilience.md).  ``progress`` is
                polled from queue counters, so the ``key`` argument is
                None in this mode.  Incompatible with ``cache_dir`` /
                ``resume`` / ``batch`` (the queue is itself the resume
                mechanism: re-running with the same ``queue_dir`` picks
                up where the grid left off).
            lease_duration / max_attempts / backoff_base / backoff_cap:
                Queue-mode recovery policy — how long a worker may hold
                a cell without heartbeating, how many executions a cell
                is granted before quarantine, and the capped exponential
                backoff between retries.

        A point that raises is recorded as a :class:`FailedRun` in
        ``SweepResult.failures``; the rest of the grid still runs.  A
        worker task that dies wholesale (e.g. OOM-kill, unpicklable
        input) is retried cell-by-cell in the parent, so only the truly
        bad cells fail.
        """
        if batch and workers > 1:
            raise ValueError(
                "batch=True drives cells in-process; combine it with "
                "workers=1 (process parallelism already amortizes the "
                "same per-run overheads)"
            )
        if batch and (cell_timeout is not None or queue_dir is not None):
            raise ValueError(
                "batch=True interleaves cells in one process; it cannot "
                "be combined with cell_timeout or queue_dir (both need "
                "per-cell process isolation)"
            )
        if queue_dir is not None:
            if cache_dir is not None or resume:
                raise ValueError(
                    "queue_dir is its own resume mechanism; do not "
                    "combine it with cache_dir/resume"
                )
            return self._run_queue(
                scale=scale, seed=seed, progress=progress, workers=workers,
                max_events_per_run=max_events_per_run,
                stall_threshold=stall_threshold, fork=fork, checks=checks,
                bundle_dir=bundle_dir, cell_timeout=cell_timeout,
                queue_dir=queue_dir, lease_duration=lease_duration,
                max_attempts=max_attempts, backoff_base=backoff_base,
                backoff_cap=backoff_cap,
            )
        result = SweepResult()
        total = self.size()
        grid = list(self._grid(scale, seed, max_events_per_run,
                               stall_threshold, checks, bundle_dir))
        outcomes: dict[int, object] = {}
        from_cache: set[int] = set()
        done = 0

        def land(index: int, outcome) -> None:
            nonlocal done
            outcomes[index] = outcome
            done += 1
            if progress is not None:
                progress(done, total, grid[index][0])

        # --- cache: resolve fingerprints, maybe resume completed cells
        cache = None
        code_fp = ""
        fingerprints: list[Optional[str]] = [None] * len(grid)
        if cache_dir is not None:
            from repro.harness.io import SweepResultCache
            from repro.perf.fingerprint import code_fingerprint

            cache = SweepResultCache(cache_dir)
            code_fp = code_fingerprint()
            for index, (_key, args) in enumerate(grid):
                fingerprints[index] = cell_fingerprint(args, code_fp)
            if resume:
                for index, fingerprint in enumerate(fingerprints):
                    if fingerprint is None:
                        continue
                    cached = cache.load(fingerprint)
                    if cached is not None:
                        result.cache_hits += 1
                        from_cache.add(index)
                        land(index, cached)

        # --- supervised execution: a wall-clock budget means every
        # remaining cell runs cold in its own killable child process
        if cell_timeout is not None:
            self._run_supervised(grid, outcomes, workers, cell_timeout,
                                 result, land)

        # --- plan: split the remaining cells into fork groups and colds
        pending = [i for i in range(len(grid)) if i not in outcomes]
        groups: list[tuple[Optional[str], list[int]]] = []
        cold: list[int] = []
        if fork:
            by_prefix: dict[str, list[int]] = {}
            for index in pending:
                group_fp = group_fingerprint(grid[index][1], code_fp)
                if group_fp is None:
                    cold.append(index)
                else:
                    by_prefix.setdefault(group_fp, []).append(index)
            for group_fp, members in by_prefix.items():
                if len(members) < 2:
                    # A group of one amortizes nothing; run it cold.
                    cold.extend(members)
                else:
                    groups.append((group_fp, members))
            cold.sort()
        else:
            cold = pending

        # --- execute
        if workers <= 1:
            run_group = (
                self._run_group_batched if batch else self._run_group_serial
            )
            for group_fp, members in groups:
                run_group(grid, group_fp, members, cache, result, land)
            if batch:
                # Checked cells need the staged cold path (the sanitizer
                # drives the machine itself); everything else batches.
                plain = [i for i in cold if grid[i][1][9] is None]
                staged = [i for i in cold if grid[i][1][9] is not None]
                outcomes_b = _run_cold_batch([grid[i][1] for i in plain])
                for index, outcome in zip(plain, outcomes_b):
                    land(index, outcome)
                    result.cold_cells += 1
                for index in staged:
                    land(index, _run_point_safe(grid[index][1]))
                    result.cold_cells += 1
            else:
                for index in cold:
                    land(index, _run_point_safe(grid[index][1]))
                    result.cold_cells += 1
        else:
            self._run_parallel(
                grid, groups, cold, workers, chunk_size, total,
                cache, result, land,
            )

        # --- record in grid order; store fresh successes in the cache
        for index, (key, _args) in enumerate(grid):
            outcome = outcomes[index]
            self._record(result, key, outcome)
            if (cache is not None and index not in from_cache
                    and fingerprints[index] is not None):
                result.cache_misses += 1
                if isinstance(outcome, RunResult):
                    cache.store(fingerprints[index], outcome)
        return result

    # ------------------------------------------------------------------
    # Fork-group execution
    # ------------------------------------------------------------------

    def _run_group_serial(self, grid, group_fp, members, cache,
                          result, land) -> None:
        """Prefix once, fork every member, in this process."""
        try:
            snap, meta = _prepare_group(grid[members[0]][1], cache, group_fp)
        except Exception:
            # The shared prefix failed; each cell re-runs cold so its
            # failure (or success) is exactly what a plain run reports.
            for index in members:
                land(index, _run_point_safe(grid[index][1]))
                result.cold_cells += 1
            return
        result.fork_groups += 1
        result.prefix_events += snap.events_executed
        for index in members:
            land(index, _finish_fork_safe(snap, meta, _fork_cell(grid[index][1])))
            result.forked_cells += 1

    def _run_group_batched(self, grid, group_fp, members, cache,
                           result, land) -> None:
        """Prefix once, fork every member, drive the forks as one batch."""
        try:
            snap, meta = _prepare_group(grid[members[0]][1], cache, group_fp)
        except Exception:
            for index in members:
                land(index, _run_point_safe(grid[index][1]))
                result.cold_cells += 1
            return
        result.fork_groups += 1
        result.prefix_events += snap.events_executed
        cells = [_fork_cell(grid[index][1]) for index in members]
        for index, outcome in zip(members, _finish_fork_batch(snap, meta, cells)):
            land(index, outcome)
            result.forked_cells += 1

    def _run_parallel(self, grid, groups, cold, workers, chunk_size,
                      total, cache, result, land) -> None:
        """Fan chunks out to persistent workers; snapshots ship per chunk."""
        from concurrent.futures import ProcessPoolExecutor

        if chunk_size <= 0:
            chunk_size = max(1, total // (4 * workers))

        # Prefixes run in the parent: each group's snapshot is computed
        # once and pickled into every chunk submitted for that group.
        fork_tasks: list[tuple[list[int], object, object]] = []
        for group_fp, members in groups:
            try:
                snap, meta = _prepare_group(
                    grid[members[0]][1], cache, group_fp
                )
            except Exception:
                cold = cold + members
                continue
            result.fork_groups += 1
            result.prefix_events += snap.events_executed
            for part in _chunked(members, chunk_size):
                fork_tasks.append((part, snap, meta))
        cold = sorted(cold)

        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = []
            for part, snap, meta in fork_tasks:
                cells = [_fork_cell(grid[index][1]) for index in part]
                futures.append(
                    (part, True, pool.submit(_run_fork_chunk, snap, meta, cells))
                )
            for part in _chunked(cold, chunk_size):
                args_list = [grid[index][1] for index in part]
                futures.append(
                    (part, False, pool.submit(_run_chunk, args_list))
                )
            for part, forked, future in futures:
                try:
                    chunk_outcomes = future.result()
                except Exception:
                    # The whole task died (worker killed, inputs failed
                    # to pickle...).  Retry cell-by-cell in the parent so
                    # only the genuinely bad cells become FailedRuns.
                    for index in part:
                        land(index, _run_point_safe(grid[index][1]))
                        result.cold_cells += 1
                    continue
                for index, outcome in zip(part, chunk_outcomes):
                    land(index, outcome)
                    if forked:
                        result.forked_cells += 1
                    else:
                        result.cold_cells += 1

    def _run_supervised(self, grid, outcomes, workers, cell_timeout,
                        result, land) -> None:
        """Run every pending cell cold in a supervised child process.

        The supervisor (:func:`repro.harness.worker.run_cell_supervised`)
        SIGKILLs a cell past ``cell_timeout`` seconds, so a hang in
        native/OS code costs one cell, not the whole grid.  With
        ``workers > 1``, supervisor *threads* each drive one child
        process — unlike a process pool, a killed cell poisons nothing.
        """
        from repro.harness.worker import run_cell_supervised

        pending = [i for i in range(len(grid)) if i not in outcomes]
        if workers <= 1:
            for index in pending:
                land(index, run_cell_supervised(
                    grid[index][1], timeout=cell_timeout
                ))
                result.cold_cells += 1
        else:
            from concurrent.futures import ThreadPoolExecutor, as_completed

            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(run_cell_supervised, grid[index][1],
                                None, None, cell_timeout): index
                    for index in pending
                }
                for future in as_completed(futures):
                    land(futures[future], future.result())
                    result.cold_cells += 1

    def _run_queue(self, *, scale, seed, progress, workers,
                   max_events_per_run, stall_threshold, fork, checks,
                   bundle_dir, cell_timeout, queue_dir, lease_duration,
                   max_attempts, backoff_base,
                   backoff_cap) -> SweepResult:
        """Execute the grid through an on-disk fault-tolerant queue.

        The grid is materialized as lease-managed sqlite rows
        (:class:`repro.harness.queue.SweepQueue`); ``workers`` local
        worker processes drain it, and external ``repro worker``
        processes may attach at any time to help.  The calling process
        supervises: it reaps expired leases, and if every local worker
        dies it degrades to draining the queue itself, so the sweep
        always converges.  Results are byte-identical to the in-process
        executor (same runner, same fork plan, deterministic cells).
        """
        import multiprocessing
        import time as _time

        from repro.harness.queue import QueueSettings, SweepQueue
        from repro.harness.worker import run_worker
        from repro.perf.fingerprint import code_fingerprint

        grid = list(self._grid(scale, seed, max_events_per_run,
                               stall_threshold, checks, bundle_dir))
        code_fp = code_fingerprint()
        cells = plan_queue_cells(grid, code_fp, fork)
        settings = QueueSettings(
            lease_duration=lease_duration, max_attempts=max_attempts,
            backoff_base=backoff_base, backoff_cap=backoff_cap,
            cell_timeout=cell_timeout,
        )
        queue = SweepQueue.create_or_attach(
            queue_dir, cells, settings=settings, code_fp=code_fp
        )
        total = len(grid)

        def report_progress() -> None:
            if progress is not None:
                stats = queue.stats()
                progress(stats.total - stats.live, total, None)

        if workers > 1:
            ctx = multiprocessing.get_context(
                "fork" if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
            procs = [
                ctx.Process(
                    target=run_worker, args=(str(queue_dir),),
                    kwargs={"install_signal_handlers": True},
                )
                for _ in range(workers)
            ]
            for proc in procs:
                proc.start()
            try:
                while not queue.drained():
                    queue.reap()
                    report_progress()
                    if not any(proc.is_alive() for proc in procs):
                        # The whole local fleet died; drain in-process
                        # so the sweep still converges.
                        break
                    _time.sleep(0.2)
            finally:
                for proc in procs:
                    if proc.is_alive():
                        proc.terminate()  # SIGTERM -> graceful drain
                for proc in procs:
                    proc.join()
        # Degraded mode (workers <= 1), fleet-death fallback, and the
        # final safety net for leases released by draining workers: the
        # calling process claims cells itself until the grid is done.
        while not queue.drained():
            run_worker(queue_dir, exit_when_drained=True)
        report_progress()
        return queue.collect()

    @staticmethod
    def _record(result: SweepResult, key: SweepKey, outcome) -> None:
        if isinstance(outcome, Exception):
            result.failures[key] = FailedRun.from_exception(
                key.workload, key.policy, outcome
            )
            return
        from repro.harness.worker import CellFailure

        if isinstance(outcome, CellFailure):
            result.failures[key] = FailedRun(
                workload=key.workload, policy=key.policy,
                error_type=outcome.error_type, message=outcome.message,
                bundle_path=outcome.bundle_path,
            )
        else:
            result.points[key] = outcome


def _chunked(items: list, size: int) -> list:
    return [items[i:i + size] for i in range(0, len(items), size)]


def _fork_cell(args):
    """The per-cell payload a fork continuation needs."""
    (_workload, policy, _config, hyper, _scale, _seed,
     _fault, max_events, stall_threshold, _checks, _bundle_dir) = args
    return policy, hyper, max_events, stall_threshold


def _prepare_group(args, cache=None, group_fp=None):
    """Run one group's shared prefix and snapshot it (cache-aware)."""
    if cache is not None and group_fp is not None:
        cached = cache.load_snapshot(group_fp)
        if cached is not None:
            return cached
    (workload, policy, config, hyper, scale, seed,
     fault, max_events, stall_threshold, _checks, _bundle_dir) = args
    machine, built, kernels = prepare_run(
        workload, policy=policy, config=config, hyper=hyper,
        scale=scale, seed=seed, faults=fault,
    )
    machine.start(kernels)
    machine.run_until(
        machine.hyper.migration_period - 1,
        max_events=max_events, stall_threshold=stall_threshold,
    )
    snap = machine.snapshot()
    meta = _WorkloadMeta(built.spec.abbrev, built.seed, built.scale)
    if cache is not None and group_fp is not None:
        cache.store_snapshot(group_fp, (snap, meta))
    return snap, meta


def _finish_fork(snap, meta: _WorkloadMeta, cell) -> RunResult:
    """Fork one cell off a prefix snapshot and run it to completion."""
    policy, hyper, max_events, stall_threshold = cell
    machine = snap.fork()
    machine.adopt_variant(policy, hyper)
    if machine.finish_time is None:
        budget = None
        if max_events is not None:
            # The budget spans prefix + continuation, like a cold run's.
            budget = max_events - snap.events_executed
        machine.finish(max_events=budget, stall_threshold=stall_threshold)
    return harvest_result(machine, meta)


def _finish_fork_safe(snap, meta, cell):
    try:
        return _finish_fork(snap, meta, cell)
    except Exception as exc:
        return exc


def _run_fork_chunk(snap, meta, cells: list) -> list:
    """Continue several cells from one snapshot in one worker task.

    The pickled snapshot crosses the process boundary once per chunk;
    every cell in the chunk forks from the worker's in-memory copy.
    """
    return [_finish_fork_safe(snap, meta, cell) for cell in cells]


def _finish_fork_batch(snap, meta: _WorkloadMeta, cells: list) -> list:
    """Fork every cell off one snapshot and drive them as one batch.

    Outcome-per-cell (result or exception), like :func:`_finish_fork_safe`
    over the list — and byte-identical to it, since batch members never
    interact.  Budget failure messages quote the continuation budget,
    matching the serial fork path's documented asymmetry.
    """
    from repro.harness.batch import BatchRunner

    runner = BatchRunner()
    members: list = []
    for cell in cells:
        policy, hyper, max_events, stall_threshold = cell
        try:
            machine = snap.fork()
            machine.adopt_variant(policy, hyper)
            budget = None
            if max_events is not None:
                budget = max_events - snap.events_executed
            members.append(runner.add(machine, meta, budget, stall_threshold))
        except Exception as exc:
            members.append(exc)
    runner.drive()
    out = []
    for member in members:
        if isinstance(member, Exception):
            out.append(member)
        elif member.error is not None:
            out.append(member.error)
        else:
            out.append(harvest_result(member.machine, meta))
    return out


def _run_cold_batch(args_list: list) -> list:
    """Build and start every unchecked cold cell, drive them as one batch.

    Outcome-per-cell, byte-identical to mapping :func:`_run_point_safe`.
    Cells that fail during construction (unknown workload/policy, page
    size mismatch) fail with the cold path's own error, before the batch
    starts.
    """
    from repro.harness.batch import BatchRunner

    runner = BatchRunner()
    members: list = []
    for args in args_list:
        (workload, policy, config, hyper, scale, seed,
         fault, max_events, stall_threshold, _checks, _bundle_dir) = args
        try:
            machine, built, kernels = prepare_run(
                workload, policy=policy, config=config, hyper=hyper,
                scale=scale, seed=seed, faults=fault,
            )
            machine.start(kernels)
            members.append(runner.add(machine, built, max_events,
                                      stall_threshold))
        except Exception as exc:
            members.append(exc)
    runner.drive()
    out = []
    for member in members:
        if isinstance(member, Exception):
            out.append(member)
        elif member.error is not None:
            out.append(member.error)
        else:
            out.append(harvest_result(member.machine, member.workload))
    return out


def _run_point_safe(args):
    """Run one grid point, returning the exception instead of raising."""
    try:
        return _run_point(args)
    except Exception as exc:
        return exc


def _run_chunk(args_list: list) -> list:
    """Execute several grid points in one worker task.

    Returning per-point outcomes (result or exception) keeps the
    one-bad-cell-never-kills-the-grid guarantee under chunking.
    """
    return [_run_point_safe(args) for args in args_list]


def _run_point(args) -> RunResult:
    """Execute one grid point (module-level for multiprocessing pickling)."""
    (workload, policy, config, hyper, scale, seed,
     fault, max_events, stall_threshold, checks, bundle_dir) = args
    return run_workload(
        workload, policy, config=config, hyper=hyper, scale=scale, seed=seed,
        faults=fault, max_events=max_events, stall_threshold=stall_threshold,
        checks=checks, bundle_dir=bundle_dir,
    )
