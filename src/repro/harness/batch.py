"""Batched multi-run execution: N independent simulations, one process.

Campaign-shaped work — seed-robustness studies, Monte Carlo fault
sweeps, sweep cells forked off one snapshot prefix — runs N *independent*
machines.  Spawning a process per run pays interpreter start-up, imports,
and machine construction N times; :class:`BatchRunner` instead advances
all N inside one process with per-run scheduling state (next event time,
remaining event budget) held in arrays, and a single driver loop that
repeatedly picks the laggard machine and advances it one bounded slice.

Byte-parity contract
--------------------

The member simulations never interact: each slice is an ordinary
``engine.run(until=...)`` on one machine, so each member executes exactly
the event stream its serial run would — the batched-vs-serial parity
test pins this bit-for-bit.  Error behaviour is also mirrored: a member
that exhausts its event budget or stalls fails with the same exception
and message a serial :meth:`Machine.finish` raises, and one failed
member never takes down its siblings (outcomes are recorded per member).

The slice bound only controls *interleaving*, never semantics.  A
watchdog subtlety that makes this true for stalls too: the engine resets
its no-progress counter whenever the clock advances, and a slice
boundary is only reached when the next event lies strictly beyond the
bound (the clock is about to advance), so slicing can never split a
livelock plateau that a serial run would have detected.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.config.hyperparams import GriffinHyperParams
from repro.config.system import SystemConfig
from repro.harness.runner import harvest_result, prepare_run
from repro.harness.results import RunResult
from repro.sim.engine import SimulationStall

#: Default slice width in cycles.  Large enough that driver overhead
#: (argmin + one engine.run call per slice) is noise next to the events
#: inside the slice; small enough that members stay loosely in step.
DEFAULT_QUANTUM = 5_000.0

_INF = float("inf")


class _Member:
    """One machine's scheduling state inside a batch."""

    __slots__ = ("machine", "workload", "budget", "remaining",
                 "stall_threshold", "error", "done")

    def __init__(self, machine, workload, max_events, stall_threshold):
        self.machine = machine
        self.workload = workload
        # ``budget`` is the number quoted in failure messages (the full
        # budget a serial run would report); ``remaining`` is what is
        # actually left to hand the engine.
        self.budget = max_events
        self.remaining = max_events
        self.stall_threshold = stall_threshold
        self.error: Optional[BaseException] = None
        self.done = False


class BatchRunner:
    """Advance N started machines to completion in one event-loop driver.

    Members must already be ``start()``-ed (or forked from a started
    snapshot).  ``drive()`` interleaves them in bounded slices, always
    advancing the machine whose next event is earliest; per-member
    outcomes (completion or exception) land on the runner, so callers
    can harvest successes and report failures individually.
    """

    def __init__(self, quantum: float = DEFAULT_QUANTUM) -> None:
        self.quantum = quantum
        self.members: list[_Member] = []

    def add(self, machine, workload=None,
            max_events: Optional[int] = None,
            stall_threshold: Optional[int] = 1_000_000) -> _Member:
        """Register a started machine; returns its member record."""
        member = _Member(machine, workload, max_events, stall_threshold)
        if machine.finish_time is not None:
            # Possible for forked members whose prefix already finished.
            member.done = True
        self.members.append(member)
        return member

    # -- driving -------------------------------------------------------

    def _slice(self, member: _Member, bound: Optional[float]) -> None:
        """Advance one member to ``bound`` (None = to completion),
        mirroring :meth:`Machine.finish` error semantics exactly."""
        engine = member.machine.engine
        before = engine.events_executed
        engine.run(
            until=bound,
            max_events=member.remaining,
            stall_threshold=member.stall_threshold,
        )
        if member.remaining is not None:
            member.remaining -= engine.events_executed - before
        if engine.exhausted:
            raise SimulationStall(
                f"simulation exhausted its event budget "
                f"({member.budget} events) without completing all "
                f"workgroups (t={engine.now:.0f}, "
                f"pending: {engine.pending_events()})",
                engine.dump_pending(),
            )
        if member.machine.finish_time is not None:
            member.done = True
        elif engine.next_event_time() is None:
            raise RuntimeError(
                "simulation ended without completing all workgroups "
                f"(events executed: {engine.events_executed}, "
                f"pending: {engine.pending_events()})"
            )

    def drive(self) -> None:
        """Run every member to completion (or individual failure)."""
        members = self.members
        n = len(members)
        if n == 0:
            return
        # inf = retired (done or failed); the argmin driver skips it.
        next_time = np.full(n, _INF)
        for i, member in enumerate(members):
            if member.done or member.error is not None:
                continue
            t = member.machine.engine.next_event_time()
            if t is None:
                # Started but nothing queued: fail exactly as a serial
                # finish would.
                try:
                    self._slice(member, None)
                except Exception as exc:
                    member.error = exc
                if member.error is None and not member.done:
                    member.error = RuntimeError(
                        "simulation ended without completing all workgroups "
                        f"(events executed: "
                        f"{member.machine.engine.events_executed}, "
                        f"pending: "
                        f"{member.machine.engine.pending_events()})"
                    )
                continue
            next_time[i] = t
        quantum = self.quantum
        while True:
            i = int(np.argmin(next_time))
            head = next_time[i]
            if head == _INF:
                break
            member = members[i]
            # Bound: let the laggard catch up past the runner-up, plus a
            # quantum so slice overhead amortizes.  With one live member
            # left, run it straight to completion.
            others = np.partition(next_time, 1)[1] if n > 1 else _INF
            bound = None if others == _INF else max(others, head + quantum)
            try:
                self._slice(member, bound)
            except Exception as exc:
                member.error = exc
                next_time[i] = _INF
                continue
            if member.done:
                next_time[i] = _INF
                continue
            t = member.machine.engine.next_event_time()
            next_time[i] = _INF if t is None else t
            if t is None and not member.done:
                member.error = RuntimeError(
                    "simulation ended without completing all workgroups "
                    f"(events executed: "
                    f"{member.machine.engine.events_executed}, "
                    f"pending: {member.machine.engine.pending_events()})"
                )


def run_replicas(
    workload: str,
    policy: str = "baseline",
    config: Optional[SystemConfig] = None,
    hyper: Optional[GriffinHyperParams] = None,
    scale: float = 0.02,
    seeds: Sequence[int] = (),
    faults=None,
    max_events: Optional[int] = None,
    stall_threshold: Optional[int] = 1_000_000,
    quantum: float = DEFAULT_QUANTUM,
) -> list[Union[RunResult, BaseException]]:
    """Run one configuration across N seeds as a single batched program.

    Semantically ``[run_workload(..., seed=s) for s in seeds]`` — the
    parity suite pins the results byte-identical — but all replicas share
    one process, one warm interpreter, and one driver loop, which is
    where the campaign-scale speedup over process-per-replica comes from.

    Returns one entry per seed, in order: the :class:`RunResult`, or the
    exception that replica raised (a failed replica never aborts its
    siblings).
    """
    runner = BatchRunner(quantum=quantum)
    built = []
    for seed in seeds:
        machine, wl, kernels = prepare_run(
            workload, policy=policy, config=config, hyper=hyper,
            scale=scale, seed=seed, faults=faults,
        )
        machine.start(kernels)
        built.append(runner.add(machine, wl, max_events, stall_threshold))
    runner.drive()
    out: list[Union[RunResult, BaseException]] = []
    for member in built:
        if member.error is not None:
            out.append(member.error)
        else:
            out.append(harvest_result(member.machine, member.workload))
    return out
