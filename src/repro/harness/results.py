"""Structured results of one simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mem.access import AccessKind
from repro.metrics.occupancy import OccupancySnapshot, imbalance_index
from repro.metrics.timeline import MigrationEvent


@dataclass
class RunResult:
    """Everything the benches need from one (workload, policy) run.

    Attributes:
        workload: Table III abbreviation.
        policy: Policy name (baseline / griffin / ...).
        cycles: Makespan in cycles.
        transactions: Post-coalescing transactions issued.
        occupancy: Final GPU page distribution.
        cpu_shootdowns / gpu_shootdowns: Shootdown rounds by device class.
        cpu_to_gpu_migrations / gpu_to_gpu_migrations: Page moves.
        dftm_denials: First touches served by CPU DCA.
        kind_counts: Transactions by service kind.
        local_fraction: Share of transactions served from local memory.
        migration_events: Completed migrations (time, page, src, dst).
        seed / scale: Reproduction parameters of the run.
        migration_retries: Transfers reissued after an injected drop.
        migration_fallbacks: Migrations abandoned after the retry budget.
        pages_pinned: Pages left serving via DCA after a fallback.
        shootdown_timeouts: Injected TLB shootdown ack timeouts.
        transfers_dropped: Injected page-transfer drops (incl. retried).
        events_executed: Engine events consumed by the run.
        cpu_pages_covered: Pages covered by CPU shootdown rounds (the
            amortization CPMS batching buys; Figure 9 companion metric).
        bundle_path: Crash-bundle directory, when the sanitizer wrote an
            informational bundle (retry exhaustion) for this run.
    """

    workload: str
    policy: str
    cycles: float
    transactions: int
    occupancy: OccupancySnapshot
    cpu_shootdowns: int
    gpu_shootdowns: int
    cpu_to_gpu_migrations: int
    gpu_to_gpu_migrations: int
    dftm_denials: int
    kind_counts: dict[AccessKind, int]
    local_fraction: float
    migration_events: list[MigrationEvent] = field(default_factory=list)
    seed: int = 0
    scale: float = 0.0
    migration_retries: int = 0
    migration_fallbacks: int = 0
    pages_pinned: int = 0
    shootdown_timeouts: int = 0
    transfers_dropped: int = 0
    events_executed: int = 0
    cpu_pages_covered: int = 0
    bundle_path: Optional[str] = None
    timeline: Optional[object] = None
    detail: Optional[dict] = None

    @property
    def total_shootdowns(self) -> int:
        """The Figure 9 metric: all shootdown rounds, CPU + GPU."""
        return self.cpu_shootdowns + self.gpu_shootdowns

    @property
    def total_migrations(self) -> int:
        return self.cpu_to_gpu_migrations + self.gpu_to_gpu_migrations

    def imbalance(self) -> float:
        """Occupancy imbalance in [0, 1]; 0 is perfectly balanced."""
        return imbalance_index(self.occupancy.pages_per_gpu)

    def summary_row(self) -> list:
        return [
            self.workload,
            self.policy,
            f"{self.cycles:.0f}",
            self.transactions,
            f"{self.local_fraction:.2f}",
            self.total_shootdowns,
            self.total_migrations,
        ]


@dataclass(frozen=True)
class FailedRun:
    """Structured record of a sweep point that did not complete.

    Sweeps must always finish: a run that stalls, exhausts its event
    budget, or raises is captured here (instead of killing the sweep) so
    the surviving grid is still usable and the failure diagnosable.
    """

    workload: str
    policy: str
    error_type: str
    message: str
    # Crash-bundle directory written by the sanitizer for this failure,
    # or None when checks were off / no bundle_dir was configured.
    bundle_path: Optional[str] = None
    # Executions granted before the failure became terminal.  1 for
    # in-process sweeps; a queue-executed cell that was retried after
    # infrastructure failures (lease expiry, timeout) counts them all.
    attempts: int = 1
    # Identity of the worker whose execution produced this record, when
    # a sweep queue ran the cell (None for in-process sweeps).
    last_owner: Optional[str] = None

    @classmethod
    def from_exception(cls, workload: str, policy: str,
                       exc: BaseException) -> "FailedRun":
        return cls(
            workload=workload,
            policy=policy,
            error_type=type(exc).__name__,
            message=str(exc).splitlines()[0] if str(exc) else "",
            bundle_path=getattr(exc, "bundle_path", None),
        )
