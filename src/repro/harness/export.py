"""Export figure data as CSV for external plotting.

Each exporter takes the corresponding experiment result and writes one
CSV whose rows match the paper figure's data series, so any plotting
tool can regenerate the charts.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from repro.harness.experiments import ComparisonResult, TimelineResult


def _open_writer(path: Path):
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = path.open("w", newline="")
    return handle, csv.writer(handle)


def export_speedups(
    result: ComparisonResult,
    path: Union[str, Path],
    baseline: str = "baseline",
    other: str = "griffin",
) -> Path:
    """Figure 12/13-style data: one row per workload with the speedup."""
    path = Path(path)
    handle, writer = _open_writer(path)
    with handle:
        writer.writerow(["workload", f"{baseline}_cycles", f"{other}_cycles", "speedup"])
        for wl, runs in result.runs.items():
            writer.writerow([
                wl,
                f"{runs[baseline].cycles:.1f}",
                f"{runs[other].cycles:.1f}",
                f"{runs[baseline].cycles / runs[other].cycles:.4f}",
            ])
    return path


def export_occupancy(result: ComparisonResult, path: Union[str, Path]) -> Path:
    """Figure 2/8-style data: per-GPU page share for every run."""
    path = Path(path)
    handle, writer = _open_writer(path)
    with handle:
        first_runs = next(iter(result.runs.values()))
        num_gpus = len(next(iter(first_runs.values())).occupancy.pages_per_gpu)
        writer.writerow(
            ["workload", "policy"] + [f"gpu{i}_pct" for i in range(num_gpus)]
        )
        for wl, runs in result.runs.items():
            for policy, run in runs.items():
                writer.writerow(
                    [wl, policy]
                    + [f"{p:.2f}" for p in run.occupancy.percentages()]
                )
    return path


def export_shootdowns(result: ComparisonResult, path: Union[str, Path]) -> Path:
    """Figure 9-style data: shootdown counts per workload and policy."""
    path = Path(path)
    handle, writer = _open_writer(path)
    with handle:
        writer.writerow(["workload", "policy", "cpu_shootdowns",
                         "gpu_shootdowns", "total"])
        for wl, runs in result.runs.items():
            for policy, run in runs.items():
                writer.writerow([wl, policy, run.cpu_shootdowns,
                                 run.gpu_shootdowns, run.total_shootdowns])
    return path


def export_timeline(result: TimelineResult, path: Union[str, Path]) -> Path:
    """Figure 1/10-style data: bucketized per-GPU access percentages."""
    path = Path(path)
    handle, writer = _open_writer(path)
    with handle:
        num_gpus = len(result.series[0][1]) if result.series else 0
        writer.writerow(["cycle"] + [f"gpu{i}_pct" for i in range(num_gpus)])
        for start, pct in result.series:
            writer.writerow([int(start)] + [f"{p:.2f}" for p in pct])
        writer.writerow([])
        writer.writerow(["migration_time", "src", "dst"])
        for t, src, dst in result.migrations:
            writer.writerow([int(t), src, dst])
    return path
