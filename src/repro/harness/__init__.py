"""Experiment harness: run workloads, compare policies, regenerate figures."""

from repro.harness.batch import BatchRunner, run_replicas
from repro.harness.io import load_result, save_result
from repro.harness.queue import QueueSettings, QueueStats, SweepQueue
from repro.harness.results import FailedRun, RunResult
from repro.harness.runner import run_workload, compare_policies
from repro.harness.sweep import Sweep, SweepKey, SweepResult
from repro.harness.validate import ValidationReport, validate_reproduction
from repro.harness.worker import WorkerReport, run_worker

__all__ = [
    "RunResult",
    "FailedRun",
    "run_workload",
    "compare_policies",
    "save_result",
    "load_result",
    "BatchRunner",
    "run_replicas",
    "Sweep",
    "SweepKey",
    "SweepResult",
    "SweepQueue",
    "QueueSettings",
    "QueueStats",
    "WorkerReport",
    "run_worker",
    "ValidationReport",
    "validate_reproduction",
]
