"""Worker-fleet supervision for ``repro serve``.

A :class:`FleetSupervisor` owns the local worker processes draining one
submission's :class:`~repro.harness.queue.SweepQueue`.  Its contract:

* a worker that exits while the grid is still live is a *fleet failure*:
  it is restarted after capped exponential backoff with decorrelated
  jitter (the same :func:`~repro.harness.queue.jittered_backoff_delay`
  the queue uses for lease reclamation), and the failure is recorded on
  the service's circuit breaker;
* a worker that exits once the grid is drained simply retired — no
  restart, no breaker event;
* when the breaker opens, or a slot exhausts ``max_restarts``, the slot
  is retired; a fleet with every slot retired while the grid is live is
  *dead*, and the submission degrades instead of hanging;
* ``drain()`` SIGTERMs every live worker (they finish or release their
  lease — never strand it), escalating to SIGKILL only past the grace
  period, then reaps the queue so any killed stragglers' leases recover.

The supervisor is poll-driven (``poll()``) so the service's asyncio loop
can drive it without threads; everything it calls is non-blocking.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.harness.queue import SweepQueue, jittered_backoff_delay
from repro.harness.worker import run_worker

_CTX = multiprocessing.get_context(
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)


def _worker_entry(queue_dir: str) -> None:
    # Fork children inherit the parent's asyncio signal wakeup fd (the
    # event loop's self-pipe socketpair).  Left in place, a SIGTERM
    # delivered to the *worker* writes its signal byte into that shared
    # pipe and the parent's loop reads it as its own SIGTERM — draining
    # a fleet would shut the whole service down.  Detach before
    # installing the worker's handlers.
    signal.set_wakeup_fd(-1)
    run_worker(queue_dir, install_signal_handlers=True)


def default_worker_factory(queue_dir: str):
    """Start one queue worker process (the production fleet member)."""
    proc = _CTX.Process(target=_worker_entry, args=(queue_dir,))
    proc.start()
    return proc


@dataclass
class _Slot:
    """One fleet position: a live process, a pending restart, or retired."""

    proc: Optional[object] = None
    restarts: int = 0
    not_before: float = 0.0  # monotonic time the next restart may run
    retired: bool = False
    exits: list = field(default_factory=list)  # observed exit codes


class FleetSupervisor:
    """Supervise ``size`` workers on one queue until it drains or dies."""

    def __init__(
        self,
        queue: SweepQueue,
        size: int = 2,
        *,
        restart_base: float = 0.25,
        restart_cap: float = 5.0,
        max_restarts: int = 5,
        breaker=None,
        worker_factory: Optional[Callable] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if size < 1:
            raise ValueError("fleet size must be >= 1")
        self.queue = queue
        self.size = size
        self.restart_base = restart_base
        self.restart_cap = restart_cap
        self.max_restarts = max_restarts
        self.breaker = breaker
        self.worker_factory = worker_factory or default_worker_factory
        self._clock = clock
        self._slots = [_Slot() for _ in range(size)]
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        for slot in self._slots:
            slot.proc = self.worker_factory(str(self.queue.root))
        self._started = True

    def poll(self) -> None:
        """Reap dead workers; restart (with backoff) or retire them."""
        if not self._started:
            return
        now = self._clock()
        drained = self.queue.drained()
        for index, slot in enumerate(self._slots):
            if slot.retired:
                continue
            if slot.proc is not None:
                if slot.proc.is_alive():
                    continue
                exitcode = slot.proc.exitcode
                slot.proc.join()
                slot.proc = None
                slot.exits.append(exitcode)
                if drained:
                    slot.retired = True  # finished its job; not a failure
                    continue
                # Died with live cells: a fleet failure.
                if self.breaker is not None:
                    self.breaker.record_failure()
                slot.restarts += 1
                if slot.restarts > self.max_restarts:
                    slot.retired = True
                    continue
                delay = jittered_backoff_delay(
                    slot.restarts, self.restart_base, self.restart_cap,
                    token=f"fleet:{self.queue.root}:{index}:{slot.restarts}",
                )
                slot.not_before = now + delay
                continue
            # Pending restart.
            if drained:
                slot.retired = True
                continue
            if self.breaker is not None and not self.breaker.allow():
                slot.retired = True  # circuit open: stop feeding it workers
                continue
            if now >= slot.not_before:
                slot.proc = self.worker_factory(str(self.queue.root))

    def drain(self, grace: float = 10.0) -> None:
        """Stop the fleet gracefully; never leave a stranded lease.

        SIGTERM first (workers finish or release their current lease),
        SIGKILL only past ``grace`` seconds, then a queue reap so a
        killed straggler's lease re-opens immediately instead of waiting
        out its deadline.
        """
        live = [s for s in self._slots if s.proc is not None
                and s.proc.is_alive()]
        for slot in live:
            try:
                os.kill(slot.proc.pid, signal.SIGTERM)
            except (ProcessLookupError, TypeError):
                pass
        deadline = time.monotonic() + grace
        for slot in live:
            slot.proc.join(max(0.0, deadline - time.monotonic()))
            if slot.proc.is_alive():
                slot.proc.kill()
                slot.proc.join()
            slot.exits.append(slot.proc.exitcode)
            slot.proc = None
            slot.retired = True
        for slot in self._slots:
            slot.retired = True
        self._started = False
        self.queue.reap()

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    @property
    def alive(self) -> int:
        return sum(1 for s in self._slots
                   if s.proc is not None and s.proc.is_alive())

    @property
    def pending_restarts(self) -> int:
        return sum(1 for s in self._slots
                   if s.proc is None and not s.retired)

    @property
    def dead(self) -> bool:
        """Every slot retired (nothing running, nothing coming back)."""
        return self._started and all(s.retired for s in self._slots)

    @property
    def pids(self) -> list:
        return [s.proc.pid for s in self._slots
                if s.proc is not None and s.proc.is_alive()]

    @property
    def total_restarts(self) -> int:
        return sum(s.restarts for s in self._slots)

    def health(self) -> dict:
        return {
            "size": self.size,
            "alive": self.alive,
            "pids": self.pids,
            "pending_restarts": self.pending_restarts,
            "restarts": self.total_restarts,
            "dead": self.dead,
        }
