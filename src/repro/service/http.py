"""Minimal HTTP/1.1 on asyncio streams (stdlib-only).

Just enough protocol for ``repro serve``: request-line + header parsing
with hard size limits, ``Content-Length`` bodies, JSON responses, and a
chunked-transfer NDJSON stream for per-cell progress.  Deliberately not
a framework — the service owns routing and semantics; this module owns
bytes on the wire.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Optional
from urllib.parse import parse_qsl, unquote, urlsplit

MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class BadRequest(Exception):
    """The client sent something unparseable; answer 400 and close."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict = field(default_factory=dict)
    headers: dict = field(default_factory=dict)  # lower-cased names
    body: bytes = b""

    def json(self):
        """The body decoded as JSON; :class:`BadRequest` on failure."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"body is not valid JSON: {exc}") from exc


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request; None on a cleanly closed connection."""
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    if len(line) > MAX_REQUEST_LINE:
        raise BadRequest("request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest(f"malformed request line: {line!r}")
    method, target, _version = parts
    split = urlsplit(target)
    path = unquote(split.path)
    query = dict(parse_qsl(split.query))

    headers: dict = {}
    total = 0
    while True:
        line = await reader.readline()
        if not line:
            raise BadRequest("connection closed mid-headers")
        if line in (b"\r\n", b"\n"):
            break
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise BadRequest("headers too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise BadRequest(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            length = int(length)
        except ValueError as exc:
            raise BadRequest("bad Content-Length") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise BadRequest("body too large")
        body = await reader.readexactly(length)
    return Request(method=method.upper(), path=path, query=query,
                   headers=headers, body=body)


def json_bytes(payload) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


async def send_json(writer: asyncio.StreamWriter, status: int, payload,
                    headers: Optional[dict] = None) -> None:
    """Write one complete JSON response (connection stays open)."""
    body = json_bytes(payload)
    head = [f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}"]
    for name, value in (headers or {}).items():
        head.append(f"{name}: {value}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()


class NDJSONStream:
    """A chunked-transfer NDJSON response: one JSON object per line.

    The service emits progress events through this while a submission
    executes; any HTTP/1.1 client (``http.client``, curl) decodes the
    chunking transparently and sees newline-delimited JSON.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.started = False
        self.closed = False

    async def start(self, status: int = 200,
                    headers: Optional[dict] = None) -> None:
        head = [f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
                "Content-Type: application/x-ndjson",
                "Transfer-Encoding: chunked",
                "Cache-Control: no-store"]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        self.writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
        )
        await self.writer.drain()
        self.started = True

    async def emit(self, event: dict) -> None:
        """Send one event as one NDJSON line (one chunk)."""
        if not self.started:
            await self.start()
        line = json_bytes(event)
        self.writer.write(f"{len(line):x}\r\n".encode("latin-1")
                          + line + b"\r\n")
        await self.writer.drain()

    async def close(self) -> None:
        if self.started and not self.closed:
            self.writer.write(b"0\r\n\r\n")
            await self.writer.drain()
        self.closed = True
