"""``repro serve``: a fault-tolerant async experiment service.

The service is a thin, heavily-guarded front end over the machinery the
harness already proves byte-identical to serial ``Sweep.run()``:

* submissions arrive as JSON sweep specs (:func:`sweep_from_spec`) and
  are canonicalized to the queue's spec digest, so identical submissions
  — sequential or concurrent — share one execution;
* the fingerprint cache answers already-computed cells immediately;
  only missing cells are enqueued (:func:`partition_cached_cells`);
* missing cells run through a :class:`SweepQueue` drained by a
  supervised local worker fleet (:class:`FleetSupervisor`);
* per-cell progress streams back as NDJSON while the fleet works.

Robustness is the point, not a bolt-on: a bounded admission budget sheds
load with 429 + ``Retry-After``; per-request deadlines cancel the fleet
gracefully (leases committed or released, never stranded) and the queue
directory survives for an idempotent resubmission to resume; repeated
fleet failures open a circuit breaker that flips the service to
cache-only read mode; SIGTERM drains every running submission before
exit.  A submission is owned by a background task, not its HTTP
connection — a dropped client never kills compute, it just detaches
from the stream.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.harness.io import (
    SweepResultCache,
    load_result,
    sweep_key_to_dict,
    sweep_result_to_dict,
)
from repro.harness.queue import QueueSettings, SweepQueue
from repro.harness.results import FailedRun
from repro.harness.sweep import (
    SpecError,
    SweepResult,
    partition_cached_cells,
    plan_queue_cells,
    sweep_from_spec,
)
from repro.service.admission import (
    AdmissionController,
    AdmissionLimitExceeded,
    CircuitBreaker,
    Deadline,
)
from repro.service.fleet import FleetSupervisor
from repro.service.http import (
    BadRequest,
    NDJSONStream,
    Request,
    read_request,
    send_json,
)


@dataclass
class Submission:
    """One canonical sweep execution, shared by every identical request."""

    digest: str
    total: int
    cells: list                    # full planned grid (key, args, fp, gfp)
    cached: list                   # (grid_index, key, fingerprint, RunResult)
    missing: list                  # planned cells still to compute
    qgrid: list                    # grid index of each queue cell
    queue: Optional[SweepQueue]
    fleet: Optional[FleetSupervisor]
    admitted: int = 0
    state: str = "running"         # running|done|degraded|cancelled|error
    cancel_reason: Optional[str] = None
    error: Optional[str] = None
    events: list = field(default_factory=list)
    done_event: asyncio.Event = field(default_factory=asyncio.Event)
    task: Optional[asyncio.Task] = None

    def cancel(self, reason: str) -> None:
        """Request graceful cancellation (first reason wins)."""
        if self.cancel_reason is None and not self.done_event.is_set():
            self.cancel_reason = reason

    def summary(self) -> dict:
        return {
            "digest": self.digest,
            "state": self.state,
            "total": self.total,
            "cached": len(self.cached),
            "enqueued": len(self.missing),
            "cancel_reason": self.cancel_reason,
        }


class ExperimentService:
    """The ``repro serve`` application: routing, guards, supervision."""

    def __init__(
        self,
        root,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 2,
        max_in_flight_cells: int = 64,
        retry_after: float = 1.0,
        breaker_threshold: int = 3,
        breaker_reset: float = 30.0,
        lease_duration: float = 30.0,
        max_attempts: int = 3,
        cell_timeout: Optional[float] = None,
        poll_interval: float = 0.1,
        drain_grace: float = 10.0,
        worker_factory: Optional[Callable] = None,
    ) -> None:
        self.root = Path(root)
        self.host = host
        self.port = port
        self.workers = workers
        self.lease_duration = lease_duration
        self.max_attempts = max_attempts
        self.cell_timeout = cell_timeout
        self.poll_interval = poll_interval
        self.drain_grace = drain_grace
        self.worker_factory = worker_factory
        self.cache = SweepResultCache(self.root / "cache")
        self.queues_root = self.root / "queues"
        self.queues_root.mkdir(parents=True, exist_ok=True)
        self.admission = AdmissionController(
            max_in_flight_cells=max_in_flight_cells, retry_after=retry_after
        )
        self.breaker = CircuitBreaker(
            failure_threshold=breaker_threshold, reset_after=breaker_reset
        )
        self.started_at = time.time()
        self._submissions: dict[str, Submission] = {}
        self._digest_locks: dict[str, asyncio.Lock] = {}
        self._active_streams = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_requested: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Spec canonicalization
    # ------------------------------------------------------------------

    def _prepare(self, spec: dict) -> dict:
        """Canonicalize a spec: grid, fingerprints, digest (blocking)."""
        from repro.perf.fingerprint import code_fingerprint

        deadline_s = None
        if isinstance(spec, dict) and spec.get("deadline_s") is not None:
            deadline_s = spec["deadline_s"]
            if (not isinstance(deadline_s, (int, float))
                    or isinstance(deadline_s, bool) or deadline_s <= 0):
                raise SpecError("'deadline_s' must be a positive number")
        sweep, run_params = sweep_from_spec(spec)
        grid = list(sweep._grid(
            run_params["scale"], run_params["seed"],
            run_params["max_events_per_run"], run_params["stall_threshold"],
            None, None,
        ))
        code_fp = code_fingerprint()
        cells = plan_queue_cells(grid, code_fp, fork=True)
        digest = SweepQueue._spec_digest(cells, code_fp)
        return {"cells": cells, "digest": digest, "code_fp": code_fp,
                "deadline_s": deadline_s}

    def _new_queue_dir(self, digest: str) -> Path:
        """A fresh queue directory for one execution of ``digest``.

        Each execution gets its own sequence-numbered directory: a
        resumed submission enqueues only the still-missing cells, whose
        spec digest differs from the original's, so reusing the old
        directory would (correctly) be rejected as a different grid.
        Old directories are kept — their quarantine bundles stay
        retrievable through ``GET /bundles``.
        """
        base = self.queues_root / digest[:16]
        base.mkdir(parents=True, exist_ok=True)
        seq = len([p for p in base.iterdir() if p.is_dir()])
        return base / f"q{seq:03d}"

    def _create_submission(self, prep: dict) -> Submission:
        """Build a Submission from prepared cells (blocking; may raise)."""
        cells = prep["cells"]
        cached, missing = partition_cached_cells(cells, self.cache)
        cached_indices = {index for index, _k, _fp, _r in cached}
        qgrid = [i for i in range(len(cells)) if i not in cached_indices]
        events = [
            {"event": "cell", "index": index, "status": "cached",
             "key": sweep_key_to_dict(key)}
            for index, key, _fp, _result in cached
        ]
        if not missing:
            sub = Submission(
                digest=prep["digest"], total=len(cells), cells=cells,
                cached=cached, missing=[], qgrid=[], queue=None, fleet=None,
                state="done", events=events,
            )
            sub.events.append({"event": "done", "state": "done",
                               "cached": len(cached), "enqueued": 0})
            sub.done_event.set()
            return sub
        # Guards: budget first (nothing held on refusal), then breaker.
        self.admission.admit(len(missing))
        if not self.breaker.allow():
            self.admission.release(len(missing))
            raise ServiceUnavailable(
                "circuit breaker open: serving cached results only",
                retry_after=self.breaker.retry_after,
            )
        try:
            settings = QueueSettings(
                lease_duration=self.lease_duration,
                max_attempts=self.max_attempts,
                cell_timeout=self.cell_timeout,
            )
            queue = SweepQueue.create(
                self._new_queue_dir(prep["digest"]), missing,
                settings=settings, code_fp=prep["code_fp"],
            )
            fleet = FleetSupervisor(
                queue, size=self.workers, breaker=self.breaker,
                worker_factory=self.worker_factory,
            )
        except BaseException:
            self.admission.release(len(missing))
            self.breaker.abort_trial()
            raise
        return Submission(
            digest=prep["digest"], total=len(cells), cells=cells,
            cached=cached, missing=missing, qgrid=qgrid, queue=queue,
            fleet=fleet, admitted=len(missing), events=events,
        )

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------

    def _emit_cell_events(self, sub: Submission, seen: dict) -> None:
        """Append a progress event for every newly settled queue cell."""
        if sub.queue is None:
            return
        for qi, row in enumerate(sub.queue.rows()):
            _idx, status, _owner, _last, attempts = row[:5]
            if status in ("done", "failed", "quarantined") \
                    and seen.get(qi) != status:
                seen[qi] = status
                grid_index = sub.qgrid[qi]
                key = sub.cells[grid_index][0]
                sub.events.append({
                    "event": "cell", "index": grid_index, "status": status,
                    "attempts": attempts, "key": sweep_key_to_dict(key),
                })

    def _harvest(self, sub: Submission) -> None:
        """Copy every completed queue cell into the fingerprint cache.

        Run after the fleet stops (teardown), so an identical
        resubmission — including one resuming a deadline-cancelled run —
        is served from cache for everything already computed and
        enqueues only the remainder.  Failures are never cached: a
        resubmission retries them.
        """
        for qi, row in enumerate(sub.queue.rows()):
            _idx, status = row[0], row[1]
            result_path = row[7]
            if status != "done" or result_path is None:
                continue
            fingerprint = sub.missing[qi][2]
            if fingerprint is None:
                continue
            if self.cache.load(fingerprint) is None:
                self.cache.store(fingerprint, load_result(result_path))

    def _teardown_sync(self, sub: Submission) -> None:
        """Blocking cleanup: stop the fleet, harvest results (executor)."""
        if sub.fleet is not None:
            sub.fleet.drain(self.drain_grace)
        if sub.queue is not None:
            self._harvest(sub)

    async def _supervise(self, sub: Submission) -> None:
        """Own one submission: drive the fleet until done/dead/cancelled."""
        loop = asyncio.get_running_loop()
        seen: dict = {}
        try:
            await loop.run_in_executor(None, sub.fleet.start)
            while True:
                await asyncio.sleep(self.poll_interval)
                await loop.run_in_executor(None, sub.queue.reap)
                await loop.run_in_executor(None, sub.fleet.poll)
                self._emit_cell_events(sub, seen)
                if sub.cancel_reason is not None:
                    sub.state = "cancelled"
                    break
                if sub.queue.drained():
                    sub.state = "done"
                    break
                if sub.fleet.dead:
                    sub.state = "degraded"
                    break
        except Exception as exc:  # supervision must never vanish silently
            sub.state = "error"
            sub.error = f"{type(exc).__name__}: {exc}"
        finally:
            with contextlib.suppress(asyncio.CancelledError):
                await asyncio.shield(
                    loop.run_in_executor(None, self._teardown_sync, sub)
                )
            self._emit_cell_events(sub, seen)
            # Workers finishing their last cell during the graceful drain
            # can complete the grid; honor that, but a requested cancel
            # keeps its state so the client sees why the fleet stopped.
            if (sub.state == "degraded" and sub.queue is not None
                    and sub.queue.drained()):
                sub.state = "done"
            if sub.admitted:
                if sub.state == "done":
                    self.breaker.record_success()
                elif sub.state == "cancelled":
                    # Not a fleet verdict: don't hold a half-open trial.
                    self.breaker.abort_trial()
                self.admission.release(sub.admitted)
                sub.admitted = 0
            final = {"event": "done", "state": sub.state,
                     "cached": len(sub.cached), "enqueued": len(sub.missing)}
            if sub.cancel_reason is not None:
                final["reason"] = sub.cancel_reason
            if sub.error is not None:
                final["error"] = sub.error
            sub.events.append(final)
            sub.done_event.set()

    def _assemble(self, sub: Submission) -> SweepResult:
        """Merge cache hits and queue outcomes back into grid order.

        Mirrors :meth:`SweepQueue.collect` for the queued subset, so the
        serialized result is byte-identical to serial ``Sweep.run()``.
        """
        cached_map = {index: (key, result)
                      for index, key, _fp, result in sub.cached}
        qrows = sub.queue.rows() if sub.queue is not None else []
        qmap = {sub.qgrid[qi]: row for qi, row in enumerate(qrows)}
        result = SweepResult()
        for grid_index, (key, _args, _fp, _gfp) in enumerate(sub.cells):
            if grid_index in cached_map:
                result.points[key] = cached_map[grid_index][1]
                continue
            (_idx, status, _owner, last_owner, attempts, error_type,
             message, result_path, bundle_path) = qmap[grid_index]
            if status == "done":
                result.points[key] = load_result(result_path)
            elif status in ("failed", "quarantined"):
                result.failures[key] = FailedRun(
                    workload=key.workload, policy=key.policy,
                    error_type=error_type or status, message=message or "",
                    bundle_path=bundle_path, attempts=max(attempts, 1),
                    last_owner=last_owner,
                )
            else:
                result.failures[key] = FailedRun(
                    workload=key.workload, policy=key.policy,
                    error_type="Incomplete",
                    message=f"cell still {status} when collected",
                    attempts=max(attempts, 1), last_owner=last_owner,
                )
        return result

    # ------------------------------------------------------------------
    # HTTP handlers
    # ------------------------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await read_request(reader)
                if request is None:
                    break
                await self._dispatch(request, writer)
        except BadRequest as exc:
            with contextlib.suppress(Exception):
                await send_json(writer, 400, {"error": str(exc)})
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop shutdown while the connection idles between requests;
            # close it quietly instead of logging a cancelled task.
            pass
        finally:
            with contextlib.suppress(Exception, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(self, request: Request,
                        writer: asyncio.StreamWriter) -> None:
        path = request.path.rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]
        try:
            if path == "/healthz" and request.method == "GET":
                await send_json(writer, 200, self.health())
            elif path == "/sweeps" and request.method == "POST":
                await self._handle_submit(request, writer)
            elif path == "/sweeps" and request.method == "GET":
                await send_json(writer, 200, {
                    "submissions": [s.summary()
                                    for s in self._submissions.values()]
                })
            elif parts[:1] == ["sweeps"] and len(parts) >= 2 \
                    and request.method == "GET":
                await self._handle_sweep_get(request, writer, parts)
            elif parts[:1] == ["bundles"] and request.method == "GET":
                await self._handle_bundles(writer, parts[1:])
            elif path in ("/healthz", "/sweeps") \
                    or parts[:1] in (["sweeps"], ["bundles"]):
                await send_json(writer, 405, {"error": "method not allowed"})
            else:
                await send_json(writer, 404, {"error": f"no route {path}"})
        except ServiceUnavailable as exc:
            await send_json(writer, 503, {"error": str(exc)},
                            headers={"Retry-After": _retry_after(exc.retry_after)})
        except AdmissionLimitExceeded as exc:
            await send_json(writer, 429, {"error": str(exc)},
                            headers={"Retry-After": _retry_after(exc.retry_after)})
        except SpecError as exc:
            await send_json(writer, 400, {"error": str(exc)})

    async def _handle_submit(self, request: Request,
                             writer: asyncio.StreamWriter) -> None:
        spec = request.json()
        loop = asyncio.get_running_loop()
        prep = await loop.run_in_executor(None, self._prepare, spec)
        deadline = Deadline(prep["deadline_s"])
        # Per-digest lock: creation suspends into an executor, so two
        # concurrent identical submissions would otherwise both miss the
        # registry and each build a queue.  The loser of the lock finds
        # the winner's submission and just attaches to its stream.
        lock = self._digest_locks.setdefault(prep["digest"], asyncio.Lock())
        async with lock:
            sub = self._submissions.get(prep["digest"])
            if sub is None or sub.done_event.is_set():
                # Not already in flight: build a fresh execution.  A
                # repeat of a finished digest re-partitions against the
                # cache, so harvested work never enqueues again.
                sub = await loop.run_in_executor(
                    None, self._create_submission, prep
                )
                self._submissions[sub.digest] = sub
                if sub.queue is not None:
                    sub.task = asyncio.create_task(self._supervise(sub))
        await self._stream_submission(writer, sub, deadline)

    async def _stream_submission(self, writer: asyncio.StreamWriter,
                                 sub: Submission,
                                 deadline: Deadline) -> None:
        stream = NDJSONStream(writer)
        self._active_streams += 1
        try:
            await stream.start(200)
            await stream.emit({
                "event": "accepted", "digest": sub.digest,
                "state": sub.state, "total": sub.total,
                "cached": len(sub.cached), "enqueued": len(sub.missing),
            })
            cursor = 0
            notified_deadline = False
            while True:
                while cursor < len(sub.events):
                    await stream.emit(sub.events[cursor])
                    cursor += 1
                if sub.done_event.is_set() and cursor >= len(sub.events):
                    break
                if deadline.expired and not notified_deadline:
                    notified_deadline = True
                    sub.cancel("deadline")
                    await stream.emit({
                        "event": "deadline", "digest": sub.digest,
                        "resubmit": "identical spec resumes from cache "
                                    "and completed cells",
                    })
                wait = self.poll_interval
                if not deadline.expired:
                    wait = min(wait, max(deadline.remaining, 0.001))
                await asyncio.sleep(wait)
            await stream.close()
        finally:
            self._active_streams -= 1

    async def _handle_sweep_get(self, request: Request,
                                writer: asyncio.StreamWriter,
                                parts: list) -> None:
        digest = parts[1]
        sub = self._submissions.get(digest)
        if sub is None:  # allow unique prefixes (the accepted digest is long)
            matches = [s for d, s in self._submissions.items()
                       if d.startswith(digest)]
            sub = matches[0] if len(matches) == 1 else None
        if sub is None:
            await send_json(writer, 404,
                            {"error": f"no submission {digest!r}"})
            return
        action = parts[2] if len(parts) > 2 else "status"
        if action == "status":
            payload = sub.summary()
            if sub.queue is not None:
                payload["queue"] = sub.queue.health().to_dict()
            await send_json(writer, 200, payload)
        elif action == "stream":
            await self._stream_submission(writer, sub, Deadline(None))
        elif action == "result":
            if not sub.done_event.is_set():
                await send_json(writer, 409, {
                    "error": "submission still executing; stream it or "
                             "retry later", "state": sub.state,
                })
                return
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(None, self._assemble, sub)
            await send_json(writer, 200, sweep_result_to_dict(result))
        else:
            await send_json(writer, 404, {"error": f"no action {action!r}"})

    async def _handle_bundles(self, writer: asyncio.StreamWriter,
                              parts: list) -> None:
        """Serve quarantine crash bundles straight off the queue dirs."""
        if not parts:
            bundles = []
            for manifest in sorted(
                    self.queues_root.glob("*/*/bundles/*/manifest.json")):
                cell = manifest.parent
                bundles.append("/".join(
                    [cell.parent.parent.parent.name,  # digest prefix
                     cell.parent.parent.name,         # queue sequence
                     cell.name]                       # cell-NNNNN
                ))
            await send_json(writer, 200, {"bundles": bundles})
            return
        if len(parts) < 3:
            await send_json(writer, 404, {"error": "bundle id is "
                                          "<digest>/<queue>/<cell>"})
            return
        digest_dir, queue_dir, cell = parts[0], parts[1], parts[2]
        bundle = (self.queues_root / digest_dir / queue_dir / "bundles"
                  / cell)
        try:
            bundle = bundle.resolve()
            bundle.relative_to(self.queues_root.resolve())
        except ValueError:
            await send_json(writer, 404, {"error": "bundle id escapes the "
                                          "bundle root"})
            return
        if not (bundle / "manifest.json").is_file():
            await send_json(writer, 404,
                            {"error": f"no bundle {'/'.join(parts[:3])!r}"})
            return
        if len(parts) == 3:
            manifest = json.loads((bundle / "manifest.json").read_text())
            files = sorted(p.name for p in bundle.iterdir() if p.is_file())
            await send_json(writer, 200,
                            {"manifest": manifest, "files": files})
            return
        member = (bundle / parts[3]).resolve()
        try:
            member.relative_to(bundle)
        except ValueError:
            await send_json(writer, 404, {"error": "file escapes the bundle"})
            return
        if not member.is_file():
            await send_json(writer, 404,
                            {"error": f"no file {parts[3]!r} in bundle"})
            return
        body = member.read_bytes()
        head = (f"HTTP/1.1 200 OK\r\nContent-Type: application/octet-stream"
                f"\r\nContent-Length: {len(body)}\r\n\r\n")
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    def health(self) -> dict:
        payload = {
            "status": "ok",
            "uptime_s": round(time.time() - self.started_at, 3),
            "breaker": self.breaker.to_dict(),
            "admission": self.admission.to_dict(),
            "submissions": {},
            "worker_pids": [],
        }
        for digest, sub in self._submissions.items():
            entry = sub.summary()
            if sub.fleet is not None:
                entry["fleet"] = sub.fleet.health()
                payload["worker_pids"].extend(entry["fleet"]["pids"])
            if sub.queue is not None:
                entry["queue"] = sub.queue.health().to_dict()
            payload["submissions"][digest] = entry
        return payload

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (the actual port lands in ``port``)."""
        self._loop = asyncio.get_running_loop()
        self._stop_requested = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def shutdown(self, drain: bool = True) -> None:
        """Stop accepting, drain every running submission, release all."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        running = [s for s in self._submissions.values()
                   if not s.done_event.is_set()]
        for sub in running:
            sub.cancel("shutdown")
        if drain and running:
            await asyncio.gather(
                *(s.done_event.wait() for s in running)
            )
        if drain:
            # Let attached NDJSON streams flush their final events and
            # close cleanly before the loop (and its tasks) go away.
            waited = 0.0
            while self._active_streams > 0 and waited < 10.0:
                await asyncio.sleep(self.poll_interval)
                waited += self.poll_interval
        elif not drain:
            for sub in running:
                if sub.fleet is not None:
                    loop = asyncio.get_running_loop()
                    await loop.run_in_executor(None, sub.fleet.drain, 0.0)

    def request_stop(self) -> None:
        if self._stop_requested is not None:
            self._stop_requested.set()

    async def _main(self, install_signals: bool = False,
                    ready: Optional[threading.Event] = None) -> None:
        await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, self.request_stop)
            print(f"repro serve listening on http://{self.host}:{self.port} "
                  f"(root {self.root})", flush=True)
        if ready is not None:
            ready.set()
        await self._stop_requested.wait()
        await self.shutdown(drain=True)

    def run(self) -> int:
        """Serve until SIGTERM/SIGINT; drain gracefully; exit 0."""
        asyncio.run(self._main(install_signals=True))
        return 0

    # -- test harness helpers ------------------------------------------

    def start_background(self) -> "ExperimentService":
        """Run the service on a daemon thread; returns when bound."""
        ready = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main(ready=ready)), daemon=True
        )
        self._thread.start()
        if not ready.wait(timeout=30.0):
            raise RuntimeError("service failed to start within 30s")
        return self

    def stop_background(self, timeout: float = 60.0) -> None:
        """Graceful drain + stop of a background service thread."""
        if self._thread is None:
            return
        self._loop.call_soon_threadsafe(self.request_stop)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("service did not stop within the timeout")
        self._thread = None


class ServiceUnavailable(RuntimeError):
    """Compute refused while the circuit breaker is open (HTTP 503)."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


def _retry_after(seconds: float) -> str:
    """Retry-After header value: whole seconds, at least 1."""
    return str(max(1, int(seconds + 0.999)))
