"""``repro serve``: an async, fault-tolerant experiment service.

See :mod:`repro.service.app` for the service itself,
:mod:`repro.service.admission` for the request guards (budget,
deadline, circuit breaker), :mod:`repro.service.fleet` for worker-fleet
supervision, and :mod:`repro.service.http` for the stdlib-only wire
layer.  ``docs/service.md`` documents the HTTP API.
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionLimitExceeded,
    CircuitBreaker,
    Deadline,
)
from repro.service.app import ExperimentService, ServiceUnavailable, Submission
from repro.service.fleet import FleetSupervisor

__all__ = [
    "AdmissionController",
    "AdmissionLimitExceeded",
    "CircuitBreaker",
    "Deadline",
    "ExperimentService",
    "FleetSupervisor",
    "ServiceUnavailable",
    "Submission",
]
