"""Admission control for ``repro serve``: budgets, deadlines, breaker.

Three small, independently testable guards stand between a request and
the simulator fleet:

* :class:`AdmissionController` — a bounded budget of in-flight cells.
  A submission whose *missing* cells would push the service past the
  budget is refused with HTTP 429 and a ``Retry-After`` hint instead of
  queueing unboundedly (load sheds at the front door, not by OOM).
* :class:`Deadline` — per-request wall clock.  An expired deadline
  cancels the submission's fleet gracefully (leases released or
  committed, never stranded) and degrades the request, not the service.
* :class:`CircuitBreaker` — repeated fleet failures flip the service to
  cache-only read mode; after a cool-down one trial submission is
  allowed through (half-open) and its outcome closes or re-opens the
  circuit.

All three are thread-safe: the asyncio loop, the fleet-supervisor
polling, and test harnesses may observe them concurrently.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional


class AdmissionLimitExceeded(RuntimeError):
    """The in-flight cell budget is exhausted (HTTP 429)."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class AdmissionController:
    """A bounded count of cells currently enqueued or executing.

    ``admit(n)`` reserves budget for a submission's missing cells and
    raises :class:`AdmissionLimitExceeded` when the reservation would
    exceed ``max_in_flight_cells``; ``release(n)`` returns the budget
    when the submission drains, is cancelled, or degrades.  Cached cells
    never consume budget — dedupe means repeat traffic is free.
    """

    def __init__(self, max_in_flight_cells: int = 64,
                 retry_after: float = 1.0) -> None:
        if max_in_flight_cells < 1:
            raise ValueError("max_in_flight_cells must be >= 1")
        self.max_in_flight_cells = max_in_flight_cells
        self.retry_after = retry_after
        self._in_flight = 0
        self._lock = threading.Lock()

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def admit(self, cells: int) -> None:
        """Reserve budget for ``cells`` cells, or raise (nothing held)."""
        if cells < 0:
            raise ValueError("cells must be >= 0")
        with self._lock:
            if self._in_flight + cells > self.max_in_flight_cells:
                raise AdmissionLimitExceeded(
                    f"admitting {cells} cells would put "
                    f"{self._in_flight + cells} in flight "
                    f"(budget {self.max_in_flight_cells}); retry later",
                    retry_after=self.retry_after,
                )
            self._in_flight += cells

    def release(self, cells: int) -> None:
        with self._lock:
            self._in_flight = max(0, self._in_flight - cells)

    def to_dict(self) -> dict:
        with self._lock:
            return {"in_flight_cells": self._in_flight,
                    "max_in_flight_cells": self.max_in_flight_cells}


class Deadline:
    """A wall-clock budget for one request (monotonic clock)."""

    def __init__(self, seconds: Optional[float],
                 clock: Callable[[], float] = time.monotonic) -> None:
        if seconds is not None and seconds <= 0:
            raise ValueError("deadline must be positive")
        self.seconds = seconds
        self._clock = clock
        self._start = clock()

    @property
    def expired(self) -> bool:
        return self.seconds is not None and self.remaining <= 0.0

    @property
    def remaining(self) -> float:
        if self.seconds is None:
            return float("inf")
        return self.seconds - (self._clock() - self._start)


class CircuitBreaker:
    """Closed -> open on repeated failures; half-open trial after rest.

    ``record_failure()`` counts consecutive fleet failures; at
    ``failure_threshold`` the circuit opens and ``allow()`` returns
    False (the service serves cache hits only).  ``reset_after``
    seconds later the circuit goes half-open: ``allow()`` lets exactly
    one trial through, whose ``record_success``/``record_failure``
    closes or re-opens it.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, failure_threshold: int = 3, reset_after: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._trial_in_flight = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._opened_at is None:
            return self.CLOSED
        if self._clock() - self._opened_at >= self.reset_after:
            return self.HALF_OPEN
        return self.OPEN

    @property
    def retry_after(self) -> float:
        """Seconds until the next trial is allowed (0 when not open)."""
        with self._lock:
            if self._opened_at is None:
                return 0.0
            return max(
                0.0, self.reset_after - (self._clock() - self._opened_at)
            )

    def allow(self) -> bool:
        """May a submission that needs compute proceed right now?"""
        with self._lock:
            state = self._state_locked()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and not self._trial_in_flight:
                self._trial_in_flight = True  # exactly one trial
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._trial_in_flight = False

    def abort_trial(self) -> None:
        """Release a half-open trial without a verdict.

        For trials that end without telling us anything about the fleet
        (the submission was cancelled by a deadline or shutdown): the
        circuit returns to plain half-open so the next compute request
        can trial, instead of the flag pinning the service in cache-only
        mode forever.
        """
        with self._lock:
            self._trial_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            state = self._state_locked()
            self._failures += 1
            if state != self.CLOSED or self._failures >= self.failure_threshold:
                # A failed half-open trial, or the threshold: (re)open.
                self._opened_at = self._clock()
                self._trial_in_flight = False

    def to_dict(self) -> dict:
        return {
            "state": self.state,
            "failure_threshold": self.failure_threshold,
            "reset_after_s": self.reset_after,
            "retry_after_s": round(self.retry_after, 3),
        }
