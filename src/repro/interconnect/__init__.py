"""Interconnect substrate: inter-device links, crossbar, arbiter."""

from repro.interconnect.link import DuplexLink, InterconnectFabric
from repro.interconnect.xbar import Crossbar
from repro.interconnect.arbiter import BiasedArbiter

__all__ = ["DuplexLink", "InterconnectFabric", "Crossbar", "BiasedArbiter"]
