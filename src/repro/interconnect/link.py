"""Inter-device fabric model.

The paper's system connects 4 GPUs and the CPU with PCIe-v4 (32 GB/s per
direction); Figure 13 re-runs the evaluation with an NVLink-class fabric.
Each device has one full-duplex port onto the fabric; a transfer pays the
one-way latency plus serialization on the sender's TX pipe and the
receiver's RX pipe, so a congested GPU (the imbalance case of Figure 2)
queues traffic on its own port exactly as the paper describes.
"""

from __future__ import annotations

from repro.config.system import LinkConfig
from repro.sim.engine import SimulationError
from repro.sim.resource import ThroughputResource

CPU_PORT = -1


class DuplexLink:
    """One device's full-duplex port: independent TX and RX pipes."""

    __slots__ = ("name", "tx", "rx", "latency")

    def __init__(self, name: str, bytes_per_cycle: float, latency: int) -> None:
        self.name = name
        self.tx = ThroughputResource(f"{name}.tx", bytes_per_cycle)
        self.rx = ThroughputResource(f"{name}.rx", bytes_per_cycle)
        self.latency = latency


class InterconnectFabric:
    """Point-to-point fabric between the CPU and all GPUs.

    Port ids: GPUs ``0..num_gpus-1``, CPU ``-1`` (:data:`CPU_PORT`).
    """

    def __init__(self, config: LinkConfig, num_gpus: int, clock_ghz: float = 1.0) -> None:
        self.config = config
        self.num_gpus = num_gpus
        rate = config.bytes_per_cycle(clock_ghz)
        self._ports: dict[int, DuplexLink] = {
            CPU_PORT: DuplexLink("link.cpu", rate, config.latency)
        }
        for g in range(num_gpus):
            self._ports[g] = DuplexLink(f"link.gpu{g}", rate, config.latency)
        self._latency = config.latency
        # Dense port lookup: index ``device + 1`` (CPU_PORT == -1 -> 0).
        self._port_seq: list[DuplexLink] = [
            self._ports[g] for g in range(-1, num_gpus)
        ]
        self.transfers = 0
        self.total_bytes = 0
        # Optional FaultInjector; wired by Machine when faults are enabled.
        self.injector = None

    def _require_port(self, device: int, role: str) -> DuplexLink:
        port = self._ports.get(device)
        if port is None:
            raise SimulationError(
                f"unknown fabric {role} port {device}; valid ports are "
                f"{CPU_PORT} (CPU) and GPU ids 0..{self.num_gpus - 1}"
            )
        return port

    def port(self, device: int) -> DuplexLink:
        return self._require_port(device, "device")

    def transfer(self, now: float, src: int, dst: int, size_bytes: int) -> float:
        """Move ``size_bytes`` from ``src`` to ``dst``; returns arrival time.

        Serialization is charged on the sender's TX pipe and the receiver's
        RX pipe; the payload then pays the one-way latency.
        """
        seq = self._port_seq
        n = len(seq)
        i = src + 1
        src_port = seq[i] if 0 <= i < n else self._require_port(src, "source")
        i = dst + 1
        dst_port = seq[i] if 0 <= i < n else self._require_port(dst, "destination")
        if src == dst:
            return now
        tx_size = rx_size = size_bytes
        latency = self._latency
        if self.injector is not None:
            # Degraded bandwidth drains the pipe proportionally slower;
            # stalls/latency faults add one-way delay.
            tx_factor = self.injector.link_bandwidth_factor(src, now)
            if tx_factor < 1.0:
                tx_size = size_bytes / tx_factor
            latency += self.injector.link_extra_latency(src, now)
        # Inlined ThroughputResource.acquire (same arithmetic/stats) for
        # the two per-transfer pipe acquisitions.
        tx = src_port.tx
        start = now if now > tx.busy_until else tx.busy_until
        tx.total_wait += start - now
        tx_done = start + tx_size / tx.bytes_per_cycle
        tx.busy_until = tx_done
        tx.total_bytes += tx_size
        tx.total_jobs += 1
        if self.injector is not None:
            rx_factor = self.injector.link_bandwidth_factor(dst, tx_done)
            if rx_factor < 1.0:
                rx_size = size_bytes / rx_factor
            latency += self.injector.link_extra_latency(dst, tx_done)
        rx = dst_port.rx
        start = tx_done if tx_done > rx.busy_until else rx.busy_until
        rx.total_wait += start - tx_done
        rx_done = start + rx_size / rx.bytes_per_cycle
        rx.busy_until = rx_done
        rx.total_bytes += rx_size
        rx.total_jobs += 1
        self.transfers += 1
        self.total_bytes += size_bytes
        return rx_done + latency

    def round_trip(
        self, now: float, requester: int, responder: int,
        request_bytes: int, response_bytes: int,
    ) -> float:
        """Request/response pair; returns the time the response arrives."""
        arrive = self.transfer(now, requester, responder, request_bytes)
        return self.transfer(arrive, responder, requester, response_bytes)

    def port_utilization(self, device: int, elapsed: float) -> tuple[float, float]:
        """(tx, rx) utilization of a device's port over ``elapsed`` cycles."""
        port = self._require_port(device, "device")
        return port.tx.utilization(elapsed), port.rx.utilization(elapsed)
