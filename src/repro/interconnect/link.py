"""Inter-device fabric model.

The paper's system connects 4 GPUs and the CPU with PCIe-v4 (32 GB/s per
direction); Figure 13 re-runs the evaluation with an NVLink-class fabric.
Each device has one full-duplex port onto the fabric; a transfer pays the
one-way latency plus serialization on the sender's TX pipe and the
receiver's RX pipe, so a congested GPU (the imbalance case of Figure 2)
queues traffic on its own port exactly as the paper describes.
"""

from __future__ import annotations

from repro.config.system import LinkConfig
from repro.sim.resource import ThroughputResource

CPU_PORT = -1


class DuplexLink:
    """One device's full-duplex port: independent TX and RX pipes."""

    __slots__ = ("name", "tx", "rx", "latency")

    def __init__(self, name: str, bytes_per_cycle: float, latency: int) -> None:
        self.name = name
        self.tx = ThroughputResource(f"{name}.tx", bytes_per_cycle)
        self.rx = ThroughputResource(f"{name}.rx", bytes_per_cycle)
        self.latency = latency


class InterconnectFabric:
    """Point-to-point fabric between the CPU and all GPUs.

    Port ids: GPUs ``0..num_gpus-1``, CPU ``-1`` (:data:`CPU_PORT`).
    """

    def __init__(self, config: LinkConfig, num_gpus: int, clock_ghz: float = 1.0) -> None:
        self.config = config
        self.num_gpus = num_gpus
        rate = config.bytes_per_cycle(clock_ghz)
        self._ports: dict[int, DuplexLink] = {
            CPU_PORT: DuplexLink("link.cpu", rate, config.latency)
        }
        for g in range(num_gpus):
            self._ports[g] = DuplexLink(f"link.gpu{g}", rate, config.latency)
        self.transfers = 0
        self.total_bytes = 0

    def port(self, device: int) -> DuplexLink:
        return self._ports[device]

    def transfer(self, now: float, src: int, dst: int, size_bytes: int) -> float:
        """Move ``size_bytes`` from ``src`` to ``dst``; returns arrival time.

        Serialization is charged on the sender's TX pipe and the receiver's
        RX pipe; the payload then pays the one-way latency.
        """
        if src == dst:
            return now
        tx_done = self._ports[src].tx.acquire(now, size_bytes)
        rx_done = self._ports[dst].rx.acquire(tx_done, size_bytes)
        self.transfers += 1
        self.total_bytes += size_bytes
        return rx_done + self.config.latency

    def round_trip(
        self, now: float, requester: int, responder: int,
        request_bytes: int, response_bytes: int,
    ) -> float:
        """Request/response pair; returns the time the response arrives."""
        arrive = self.transfer(now, requester, responder, request_bytes)
        return self.transfer(arrive, responder, requester, response_bytes)

    def port_utilization(self, device: int, elapsed: float) -> tuple[float, float]:
        """(tx, rx) utilization of a device's port over ``elapsed`` cycles."""
        port = self._ports[device]
        return port.tx.utilization(elapsed), port.rx.utilization(elapsed)
