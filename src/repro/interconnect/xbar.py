"""Intra-GPU single-stage crossbar (Table II).

Within a GPU the crossbar connects CUs to L2 slices.  At transaction
granularity its effect is a fixed traversal latency plus aggregate
bandwidth; we model the latency as part of the L1-miss path and expose an
optional bandwidth pipe for stress configurations.
"""

from __future__ import annotations

from repro.sim.resource import ThroughputResource


class Crossbar:
    """Single-stage crossbar with a fixed traversal latency.

    The aggregate-bandwidth pipe is generous by default (crossbars are not
    the bottleneck in the paper's system) but participates in accounting so
    experiments can constrain it.
    """

    def __init__(self, name: str, latency: int, bytes_per_cycle: float = 1024.0) -> None:
        self.name = name
        self.latency = latency
        self._pipe = ThroughputResource(f"{name}.pipe", bytes_per_cycle)
        self.traversals = 0

    def traverse(self, now: float, size_bytes: int = 64) -> float:
        """Cross the switch; returns arrival time at the far side."""
        self.traversals += 1
        return self._pipe.acquire(now, size_bytes) + self.latency
