"""Network arbiter with positive-feedback bias.

The paper attributes part of the first-touch imbalance to the network
arbiter: "The GPU that generates requests the fastest may be more likely to
be selected by the network arbiter for servicing, and this in turn makes
the GPU generate requests even faster."  :class:`BiasedArbiter` reproduces
that feedback loop: when requests from several GPUs contend within an
arbitration window, the GPU that has won more grants recently is serviced
with a small head start.
"""

from __future__ import annotations


class BiasedArbiter:
    """Grants a per-request scheduling bonus proportional to past wins.

    ``bias`` is the number of cycles of head start per past win, decayed
    geometrically so the advantage saturates instead of diverging.
    """

    def __init__(self, num_clients: int, bias: float = 0.02, decay: float = 0.999) -> None:
        self.num_clients = num_clients
        self.bias = bias
        self.decay = decay
        self._momentum = [0.0] * num_clients
        self.grants = [0] * num_clients

    def advantage(self, client: int) -> float:
        """Cycles of head start this client currently enjoys (<= 0)."""
        return -self.bias * self._momentum[client]

    def grant(self, client: int) -> None:
        """Record a grant, reinforcing the client's momentum."""
        for i in range(self.num_clients):
            self._momentum[i] *= self.decay
        self._momentum[client] += 1.0
        self.grants[client] += 1

    def effective_time(self, client: int, now: float) -> float:
        """Request timestamp adjusted by the client's arbitration bias."""
        return now + self.advantage(client)
