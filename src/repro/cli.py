"""Command-line interface: ``griffin-sim``.

Subcommands::

    griffin-sim run SC --policy griffin          # one simulation, summary
    griffin-sim compare MT                       # baseline vs. griffin
    griffin-sim figures fig12 fig9               # regenerate paper figures
    griffin-sim tables                           # Tables I-III + HW cost
    griffin-sim list                             # workloads & policies
    griffin-sim run SC --check --bundle-dir b/   # sanitized run, crash bundles
    griffin-sim replay b/SC-...-violation-c1234  # re-execute a crash bundle

All simulations are deterministic for a given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.config.presets import NVLINK, PCIE_V4, paper_system, small_system
from repro.core.policies import list_policies
from repro.harness import experiments as ex
from repro.harness import export as ex_csv
from repro.harness.runner import run_workload
from repro.metrics.chart import bar_chart
from repro.metrics.report import format_table
from repro.workloads.registry import list_workloads

# name -> (experiment fn, renderer, csv exporter or None)
_FIGURES = {
    "fig1": (
        ex.fig1_page_access_timeline,
        lambda r: r.render(),
        ex_csv.export_timeline,
    ),
    "fig2": (
        ex.fig2_first_touch_imbalance,
        ex.render_fig2,
        ex_csv.export_occupancy,
    ),
    "fig8": (
        ex.fig8_occupancy_balance,
        ex.render_fig8,
        ex_csv.export_occupancy,
    ),
    "fig9": (
        ex.fig9_tlb_shootdowns,
        ex.render_fig9,
        ex_csv.export_shootdowns,
    ),
    "fig10": (
        ex.fig10_dpc_migration,
        lambda r: r.render(),
        ex_csv.export_timeline,
    ),
    "fig11": (
        ex.fig11_acud_vs_flush,
        ex.render_fig11,
        lambda r, p: ex_csv.export_speedups(r, p, "griffin_flush", "griffin"),
    ),
    "fig12": (
        ex.fig12_overall_speedup,
        ex.render_fig12,
        ex_csv.export_speedups,
    ),
    "fig13": (
        ex.fig13_high_bandwidth,
        ex.render_fig13,
        ex_csv.export_speedups,
    ),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="griffin-sim",
        description="Griffin (HPCA 2020) multi-GPU page-migration simulator",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_sim_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scale", type=float, default=0.015,
                       help="footprint scale (default 0.015)")
        p.add_argument("--seed", type=int, default=3, help="RNG seed")
        p.add_argument("--gpus", type=int, default=4, help="GPU count")
        p.add_argument("--fabric", choices=["pcie", "nvlink"], default="pcie")
        p.add_argument("--full-size", action="store_true",
                       help="use the paper's full Table II GPU (slower)")
        p.add_argument("--engine-backend",
                       choices=["heap", "ring", "compiled"],
                       default="heap",
                       help="event-core backend (results are byte-identical "
                            "on all of them; 'compiled' needs the optional "
                            "C extension — see docs/performance.md)")

    def add_fault_options(p: argparse.ArgumentParser) -> None:
        g = p.add_argument_group(
            "fault injection", "deterministic fault injection (all off by "
            "default; see docs/resilience.md)"
        )
        g.add_argument("--fault-drop-rate", type=float, default=0.0,
                       metavar="P",
                       help="probability each page transfer is dropped")
        g.add_argument("--fault-max-attempts", type=int, default=3,
                       metavar="N",
                       help="migration attempts before pinning the page "
                            "(0 = retry forever)")
        g.add_argument("--fault-shootdown-delay", type=int, default=0,
                       metavar="CYCLES",
                       help="fixed extra delay on every TLB shootdown ack")
        g.add_argument("--fault-shootdown-timeout-rate", type=float,
                       default=0.0, metavar="P",
                       help="probability a shootdown ack times out")
        g.add_argument("--fault-link", action="append", default=[],
                       metavar="DEV:FACTOR[:LATENCY]",
                       help="degrade a fabric port (-1 = CPU): bandwidth "
                            "factor in (0,1] and optional extra cycles; "
                            "repeatable")
        g.add_argument("--max-events", type=int, default=None,
                       metavar="N",
                       help="event budget; the run fails fast instead of "
                            "hanging when exceeded")

    def add_check_options(p: argparse.ArgumentParser) -> None:
        g = p.add_argument_group(
            "sanitizer", "runtime invariant monitors and crash bundles "
            "(see docs/resilience.md)"
        )
        g.add_argument("--check", action="store_true",
                       help="attach every invariant monitor (page-ownership "
                            "conservation, VM coherence, ACUD drain, event "
                            "queue, retry lifecycle); a violation fails the "
                            "run with a report")
        g.add_argument("--bundle-dir", default=None, metavar="DIR",
                       help="write a crash bundle (config, seed, violation "
                            "report, event ring, warm snapshot) here on any "
                            "checked failure; replay it with "
                            "'griffin-sim replay'")
        g.add_argument("--check-snapshot-interval", type=int, default=None,
                       metavar="CYCLES",
                       help="capture a warm snapshot every N cycles so the "
                            "bundle replays from near the failure instead "
                            "of from cycle zero")

    run_p = sub.add_parser("run", help="simulate one workload under one policy")
    run_p.add_argument("workload", help="Table III abbreviation (e.g. SC)")
    run_p.add_argument("--policy", default="griffin", help="policy name")
    run_p.add_argument("--detail", action="store_true",
                       help="print the full component-level statistics")
    run_p.add_argument("--save", metavar="PATH",
                       help="write the result to a JSON file")
    add_sim_options(run_p)
    add_fault_options(run_p)
    add_check_options(run_p)

    cmp_p = sub.add_parser("compare", help="compare policies on one workload")
    cmp_p.add_argument("workload")
    cmp_p.add_argument("--policies", default="baseline,griffin",
                       help="comma-separated policy names")
    add_sim_options(cmp_p)

    fig_p = sub.add_parser("figures", help="regenerate paper figures")
    fig_p.add_argument("names", nargs="*", default=[],
                       help=f"figures to run ({', '.join(_FIGURES)}); "
                            "default: all")
    fig_p.add_argument("--export", metavar="DIR",
                       help="also write each figure's data as CSV here")
    fig_p.add_argument("--chart", action="store_true",
                       help="render speedup figures as ASCII bar charts")
    add_sim_options(fig_p)

    sub.add_parser("tables", help="print Tables I-III and the hardware cost")
    sub.add_parser("list", help="list workloads and policies")

    val_p = sub.add_parser(
        "validate", help="grade the paper's shape claims on this machine"
    )
    val_p.add_argument("--workloads", default="",
                       help="comma-separated subset (default: all ten)")
    add_sim_options(val_p)

    sweep_p = sub.add_parser(
        "sweep", help="run a workload x policy grid and tabulate it"
    )
    sweep_p.add_argument("--workloads", default="MT,SC,PR",
                         help="comma-separated workloads")
    sweep_p.add_argument("--policies", default="baseline,griffin",
                         help="comma-separated policies")
    sweep_p.add_argument("--metric", default="cycles",
                         help="metric to tabulate (cycles, local_fraction, "
                              "shootdowns, migrations, gpu_to_gpu, imbalance)")
    sweep_p.add_argument("--workers", type=int, default=1,
                         help="parallel worker processes (0 = one per core; "
                              "results are identical at any worker count)")
    sweep_p.add_argument("--chunk-size", type=int, default=0, metavar="N",
                         help="grid points submitted per process task "
                              "(0 = auto); larger chunks amortize pickling "
                              "on big grids")
    sweep_p.add_argument("--no-fork", action="store_true",
                         help="disable snapshot-fork warm-state reuse and "
                              "run every cell from cycle zero (results are "
                              "byte-identical either way)")
    sweep_p.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="cache completed cells and prefix snapshots "
                              "on disk, keyed by config + code fingerprint")
    sweep_p.add_argument("--resume", action="store_true",
                         help="serve cells already in --cache-dir from disk; "
                              "a killed sweep re-runs only unfinished cells")
    queue_g = sweep_p.add_argument_group(
        "distributed queue", "fault-tolerant on-disk sweep queue "
        "(see docs/resilience.md)"
    )
    queue_g.add_argument("--queue-dir", default=None, metavar="DIR",
                         help="materialize the grid as a lease-managed "
                              "sqlite queue; --workers local workers drain "
                              "it and any number of 'worker' processes on "
                              "machines sharing the filesystem may attach; "
                              "re-running with the same dir resumes the grid")
    queue_g.add_argument("--cell-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-cell wall-clock budget; a cell past it is "
                              "killed (and, with --queue-dir, retried with "
                              "backoff then quarantined)")
    queue_g.add_argument("--lease", type=float, default=30.0,
                         metavar="SECONDS",
                         help="queue lease duration; a worker that stops "
                              "heartbeating this long is presumed dead and "
                              "its cell reclaimed (default 30)")
    queue_g.add_argument("--max-attempts", type=int, default=3, metavar="N",
                         help="executions granted per cell before the queue "
                              "quarantines it (default 3)")
    add_sim_options(sweep_p)
    add_fault_options(sweep_p)
    add_check_options(sweep_p)

    worker_p = sub.add_parser(
        "worker", help="attach to a sweep queue and execute cells until "
                       "the grid drains"
    )
    worker_p.add_argument("queue_dir", help="queue directory created by "
                                            "'sweep --queue-dir'")
    worker_p.add_argument("--owner", default=None, metavar="NAME",
                          help="worker identity recorded on leases "
                               "(default host:pid:nonce)")
    worker_p.add_argument("--poll-interval", type=float, default=0.5,
                          metavar="SECONDS",
                          help="sleep between claim attempts when no cell "
                               "is ready (default 0.5)")
    worker_p.add_argument("--max-cells", type=int, default=None, metavar="N",
                          help="stop after claiming N cells")

    queue_p = sub.add_parser(
        "queue", help="inspect a sweep queue directory"
    )
    queue_sub = queue_p.add_subparsers(dest="queue_command", required=True)
    status_p = queue_sub.add_parser(
        "status", help="cell counts and lease health; exit 1 if any cell "
                       "is quarantined"
    )
    status_p.add_argument("queue_dir", help="queue directory created by "
                                            "'sweep --queue-dir' or serve")
    status_p.add_argument("--json", action="store_true",
                          help="emit the health snapshot as JSON")

    serve_p = sub.add_parser(
        "serve", help="run the async experiment service over HTTP"
    )
    serve_p.add_argument("--root", default="serve-root", metavar="DIR",
                         help="service state directory: result cache + "
                              "queue dirs (default serve-root)")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8642,
                         help="bind port; 0 picks a free one (default 8642)")
    serve_p.add_argument("--workers", type=int, default=2, metavar="N",
                         help="worker processes per submission (default 2)")
    serve_p.add_argument("--max-in-flight", type=int, default=64,
                         metavar="CELLS",
                         help="admission budget: max cells enqueued or "
                              "executing across all submissions; beyond it "
                              "submissions get 429 (default 64)")
    serve_p.add_argument("--retry-after", type=float, default=1.0,
                         metavar="SECONDS",
                         help="Retry-After hint on 429 responses "
                              "(default 1)")
    serve_p.add_argument("--breaker-threshold", type=int, default=3,
                         metavar="N",
                         help="consecutive fleet failures before the "
                              "circuit opens to cache-only mode (default 3)")
    serve_p.add_argument("--breaker-reset", type=float, default=30.0,
                         metavar="SECONDS",
                         help="cool-down before a half-open trial "
                              "(default 30)")
    serve_p.add_argument("--lease", type=float, default=30.0,
                         metavar="SECONDS",
                         help="queue lease duration for service workers "
                              "(default 30)")
    serve_p.add_argument("--max-attempts", type=int, default=3, metavar="N",
                         help="executions per cell before quarantine "
                              "(default 3)")
    serve_p.add_argument("--cell-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-cell wall-clock timeout (default none)")

    replay_p = sub.add_parser(
        "replay", help="re-execute a crash bundle deterministically"
    )
    replay_p.add_argument("bundle", help="bundle directory written by a "
                                         "checked run (contains manifest.json)")
    replay_p.add_argument("--bisect", action="store_true",
                          help="binary-search the snapshot..failure window "
                               "down to the smallest cycle window that still "
                               "trips the violation")
    replay_p.add_argument("--tolerance", type=float, default=1000.0,
                          metavar="CYCLES",
                          help="stop bisecting once the window is this "
                               "narrow (default 1000)")
    replay_p.add_argument("--max-events", type=int, default=None, metavar="N",
                          help="override the replay event budget")

    bench_p = sub.add_parser(
        "bench", help="run the pinned perf suite and write BENCH_<date>.json"
    )
    bench_p.add_argument("--quick", action="store_true",
                         help="small suite for CI smoke runs")
    bench_p.add_argument("--repeat", type=int, default=0, metavar="N",
                         help="timing repeats per case (best-of-N; "
                              "default 3, 1 with --quick)")
    bench_p.add_argument("--label", default="",
                         help="label embedded in the output filename")
    bench_p.add_argument("--out-dir", default=".", metavar="DIR",
                         help="directory for BENCH_<date>_<label>.json")
    bench_p.add_argument("--baseline", default="auto", metavar="PATH",
                         help="previous BENCH_*.json to diff against "
                              "('auto' = newest in --out-dir, 'none' skips)")
    bench_p.add_argument("--fail-factor", type=float, default=2.0,
                         metavar="X",
                         help="exit non-zero only if normalized e2e "
                              "throughput regressed more than X times "
                              "(generous on purpose; CI gate)")
    bench_p.add_argument("--no-save", action="store_true",
                         help="measure and print without writing a file")
    bench_p.add_argument("--engine-backend",
                         choices=["heap", "ring", "compiled"],
                         default="heap",
                         help="event-core backend every case runs on (the "
                              "ring_vs_heap and compiled_vs_python cases "
                              "always measure both of their backends)")
    return parser


def _make_faults(args: argparse.Namespace):
    """Build a FaultConfig from the CLI flags; None when all are off."""
    from repro.config.faults import FaultConfig, LinkFaultSpec

    link_faults = []
    for spec in args.fault_link:
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            raise SystemExit(
                f"error: bad --fault-link {spec!r}; expected "
                "DEV:FACTOR[:LATENCY]"
            )
        link_faults.append(LinkFaultSpec(
            device=int(parts[0]),
            bandwidth_factor=float(parts[1]),
            extra_latency=int(parts[2]) if len(parts) == 3 else 0,
        ))
    faults = FaultConfig(
        migration_drop_rate=args.fault_drop_rate,
        shootdown_ack_delay=args.fault_shootdown_delay,
        shootdown_timeout_rate=args.fault_shootdown_timeout_rate,
        link_faults=tuple(link_faults),
        max_migration_attempts=args.fault_max_attempts,
    )
    return faults if faults.enabled else None


def _make_checks(args: argparse.Namespace):
    """Build a CheckConfig from the CLI flags; None when --check is off."""
    if not args.check:
        return None
    from repro.check import CheckConfig

    return CheckConfig(snapshot_interval=args.check_snapshot_interval)


def _make_config(args: argparse.Namespace):
    from repro.sim.backends import resolve_backend

    base = paper_system(args.gpus) if args.full_size else small_system(args.gpus)
    config = base.with_link(NVLINK if args.fabric == "nvlink" else PCIE_V4)
    backend = getattr(args, "engine_backend", "heap")
    # Validate eagerly — including the REPRO_ENGINE_BACKEND override and
    # the availability of the optional compiled extension — so a bad
    # backend fails here with a clear ConfigError instead of deep inside
    # machine construction.
    resolve_backend(backend)
    if backend != "heap":
        config = config.with_engine_backend(backend)
    return config


def _summarize(result) -> str:
    rows = [
        ["Cycles", f"{result.cycles:,.0f}"],
        ["Transactions", result.transactions],
        ["Local access fraction", f"{result.local_fraction:.3f}"],
        ["Pages per GPU (%)",
         " / ".join(f"{p:.0f}" for p in result.occupancy.percentages())],
        ["TLB shootdowns", result.total_shootdowns],
        ["CPU->GPU migrations", result.cpu_to_gpu_migrations],
        ["GPU->GPU migrations", result.gpu_to_gpu_migrations],
        ["DFTM denials", result.dftm_denials],
    ]
    if (result.transfers_dropped or result.migration_retries
            or result.migration_fallbacks or result.pages_pinned
            or result.shootdown_timeouts):
        rows += [
            ["Transfers dropped (injected)", result.transfers_dropped],
            ["Migration retries", result.migration_retries],
            ["Migration fallbacks", result.migration_fallbacks],
            ["Pages pinned", result.pages_pinned],
            ["Shootdown timeouts (injected)", result.shootdown_timeouts],
        ]
    return format_table(
        ["Metric", "Value"], rows,
        f"{result.workload} under {result.policy}",
    )


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.sim.engine import SimulationError

    # Built outside the try: a ConfigError (bad backend name, unbuilt
    # compiled extension) is a usage error (exit 2 via main's handler),
    # not a simulation failure (exit 1).
    config = _make_config(args)
    try:
        result = run_workload(
            args.workload.upper(), args.policy, config=config,
            scale=args.scale, seed=args.seed, collect_detail=args.detail,
            faults=_make_faults(args), max_events=args.max_events,
            checks=_make_checks(args), bundle_dir=args.bundle_dir,
        )
    except SimulationError as exc:
        print(f"{type(exc).__name__}: {exc}", file=sys.stderr)
        bundle = getattr(exc, "bundle_path", None)
        if bundle is not None:
            print(f"crash bundle written to {bundle}", file=sys.stderr)
            print(f"replay with: griffin-sim replay {bundle}", file=sys.stderr)
        return 1
    print(_summarize(result))
    if result.bundle_path is not None:
        print(f"\n[retry-exhaustion bundle written to {result.bundle_path}]")
    if args.detail and result.detail is not None:
        from repro.metrics.collector import render_stats

        print()
        print(render_stats(result.detail))
    if args.save:
        from repro.harness.io import save_result

        path = save_result(result, args.save)
        print(f"\nresult written to {path}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = _make_config(args)
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    if len(policies) < 2:
        print("compare needs at least two policies", file=sys.stderr)
        return 2
    results = {
        policy: run_workload(
            args.workload.upper(), policy, config=config,
            scale=args.scale, seed=args.seed,
        )
        for policy in policies
    }
    reference = results[policies[0]]
    rows = [
        [policy,
         f"{r.cycles:,.0f}",
         f"{reference.cycles / r.cycles:.2f}",
         f"{r.local_fraction:.3f}",
         r.total_shootdowns]
        for policy, r in results.items()
    ]
    print(format_table(
        ["Policy", "Cycles", f"Speedup vs {policies[0]}", "Local frac",
         "Shootdowns"],
        rows, f"{args.workload.upper()}: policy comparison",
    ))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    names = [n.lower() for n in args.names] or list(_FIGURES)
    unknown = [n for n in names if n not in _FIGURES]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)}; "
              f"available: {', '.join(_FIGURES)}", file=sys.stderr)
        return 2
    kwargs = dict(config=_make_config(args), scale=args.scale, seed=args.seed)
    for name in names:
        experiment, renderer, exporter = _FIGURES[name]
        result = experiment(**dict(kwargs))
        print(renderer(result))
        if args.chart and name in ("fig11", "fig12", "fig13"):
            baseline = "griffin_flush" if name == "fig11" else "baseline"
            speedups = result.speedups(baseline, "griffin")
            print()
            print(bar_chart(speedups, f"{name}: speedup", reference=1.0))
        if args.export and exporter is not None:
            from pathlib import Path

            path = exporter(result, Path(args.export) / f"{name}.csv")
            print(f"[data written to {path}]")
        print()
    return 0


def _cmd_tables(_args: argparse.Namespace) -> int:
    print(ex.table1_hyperparameters().render())
    print()
    print(ex.table2_system_config().render())
    print()
    print(ex.table3_workloads().render())
    print()
    report = ex.hardware_cost_report()
    print(format_table(["Component", "Cost"], report.rows(),
                       "Section V: Griffin hardware cost"))
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("Workloads: " + ", ".join(list_workloads()))
    print("Policies:  " + ", ".join(list_policies()))
    print("Figures:   " + ", ".join(_FIGURES))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.harness.validate import validate_reproduction

    workloads = [w.strip().upper() for w in args.workloads.split(",") if w.strip()]
    report = validate_reproduction(
        config=_make_config(args), scale=args.scale, seed=args.seed,
        workloads=workloads or None,
    )
    print(report.render())
    return 0 if report.passed else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.harness.sweep import Sweep

    faults = _make_faults(args)
    workers = args.workers
    if workers == 0:
        import os

        workers = os.cpu_count() or 1
    sweep = Sweep(
        workloads=[w.strip().upper() for w in args.workloads.split(",") if w.strip()],
        policies=[p.strip() for p in args.policies.split(",") if p.strip()],
        configs={"default": _make_config(args)},
        faults={"injected": faults} if faults is not None else None,
    )
    if args.resume and args.cache_dir is None:
        print("error: --resume requires --cache-dir", file=sys.stderr)
        return 2
    result = sweep.run(scale=args.scale, seed=args.seed, workers=workers,
                       max_events_per_run=args.max_events,
                       chunk_size=args.chunk_size,
                       fork=not args.no_fork,
                       cache_dir=args.cache_dir, resume=args.resume,
                       checks=_make_checks(args), bundle_dir=args.bundle_dir,
                       queue_dir=args.queue_dir,
                       cell_timeout=args.cell_timeout,
                       lease_duration=args.lease,
                       max_attempts=args.max_attempts)
    print(result.table(args.metric))
    if args.queue_dir is not None:
        from repro.harness.queue import SweepQueue

        qstats = SweepQueue.open(args.queue_dir).stats()
        stats = (
            f"queue: {qstats.done} done, {qstats.failed} failed, "
            f"{qstats.quarantined} quarantined "
            f"({args.queue_dir})"
        )
    else:
        stats = (
            f"cells: {len(result.points) + len(result.failures)} "
            f"(forked {result.forked_cells}, cold {result.cold_cells}, "
            f"cached {result.cache_hits})"
        )
        if args.cache_dir is not None:
            stats += (
                f" | cache: {result.cache_hits} hits, "
                f"{result.cache_misses} misses"
            )
        if result.fork_groups:
            stats += (
                f" | {result.fork_groups} shared prefixes, "
                f"{result.prefix_events:,} prefix events"
            )
    print(stats)
    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    if len(policies) >= 2 and not result.failures:
        print()
        print(result.speedup_table(policies[0], policies[1]))
    if result.failures:
        print()
        print(result.failure_table())
        return 1
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Drain cells from a sweep queue; nonzero exit on an unhealthy grid.

    Exit codes: 2 when the queue cannot be opened; 1 when the grid is
    finished but contains failed or quarantined cells (so CI can tell
    "drained" from "drained clean"); 0 otherwise.
    """
    from repro.harness.queue import SweepQueue
    from repro.harness.worker import run_worker

    try:
        queue = SweepQueue.open(args.queue_dir)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def progress(report, stats):
        print(f"[{report.owner}] {report.claimed} claimed | queue: "
              f"{stats.open} open, {stats.leased} leased, {stats.done} done, "
              f"{stats.failed} failed, {stats.quarantined} quarantined",
              file=sys.stderr)

    report = run_worker(
        args.queue_dir, owner=args.owner,
        poll_interval=args.poll_interval, max_cells=args.max_cells,
        install_signal_handlers=True, progress=progress,
    )
    print(report.summary())
    if queue.drained():
        stats = queue.stats()
        if stats.unhealthy:
            print(f"grid drained with {stats.failed} failed and "
                  f"{stats.quarantined} quarantined cells", file=sys.stderr)
            print(queue.collect().failure_table(), file=sys.stderr)
            return 1
    return 0


def _cmd_queue(args: argparse.Namespace) -> int:
    """Inspect a queue directory; exit codes mirror ``worker``.

    Exit codes: 2 when the queue cannot be opened; 1 when any cell is
    quarantined (CI fails loudly on poisoned grids); 0 otherwise.
    """
    import json as _json

    from repro.harness.queue import SweepQueue

    try:
        queue = SweepQueue.open(args.queue_dir)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    health = queue.health()
    if args.json:
        print(_json.dumps(health.to_dict(), indent=2, sort_keys=True))
    else:
        s = health.stats
        print(f"queue: {args.queue_dir}")
        print(f"cells: {s.total} total | {s.open} open, {s.leased} leased, "
              f"{s.done} done, {s.failed} failed, "
              f"{s.quarantined} quarantined")
        print(f"drained: {'yes' if health.drained else 'no'}")
        for lease in health.leases:
            marker = " STALE" if lease.stale else ""
            print(f"  lease cell {lease.idx}: owner {lease.owner}, "
                  f"attempt {lease.attempts}, age {lease.age:.1f}s, "
                  f"{lease.remaining:.1f}s remaining{marker}")
    return 1 if health.stats.quarantined else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.app import ExperimentService

    service = ExperimentService(
        args.root, host=args.host, port=args.port,
        workers=args.workers,
        max_in_flight_cells=args.max_in_flight,
        retry_after=args.retry_after,
        breaker_threshold=args.breaker_threshold,
        breaker_reset=args.breaker_reset,
        lease_duration=args.lease,
        max_attempts=args.max_attempts,
        cell_timeout=args.cell_timeout,
    )
    return service.run()


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.check import bisect_bundle, load_bundle, replay_bundle

    try:
        bundle = load_bundle(args.bundle)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    manifest = bundle.manifest
    print(f"bundle:   {args.bundle}")
    print(f"kind:     {manifest['kind']}")
    print(f"cell:     {manifest['workload']} / {manifest['policy']} "
          f"(seed {manifest['seed']}, scale {manifest['scale']})")
    print(f"failed at cycle {manifest['failed_cycle']:,}; snapshot at "
          f"cycle {manifest['snapshot_cycle']:,}")
    print()
    if args.bisect:
        result = bisect_bundle(args.bundle, tolerance=args.tolerance)
        print(result.render())
        return 0
    outcome = replay_bundle(args.bundle, max_events=args.max_events)
    print(outcome.render())
    return 0 if outcome.reproduced else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    import os
    from pathlib import Path

    from repro.perf.bench import (
        compare_reports,
        find_previous_report,
        load_report,
        run_bench,
        save_report,
    )
    from repro.sim.backends import BACKEND_ENV, resolve_backend

    # Fail fast on an unknown backend or an unbuilt compiled extension
    # (covers the --engine-backend flag and the env override alike).
    resolve_backend(args.engine_backend)
    if args.engine_backend != "heap":
        # Suite cases build their own configs; the env override reaches
        # them all (and any subprocesses the batch baseline spawns).
        os.environ[BACKEND_ENV] = args.engine_backend

    report = run_bench(
        quick=args.quick, repeats=args.repeat, label=args.label,
        progress=lambda name: print(f"  running {name} ...", file=sys.stderr),
    )
    print(report.render())
    saved = None
    if not args.no_save:
        saved = save_report(report, args.out_dir)
        print(f"\nreport written to {saved}")

    if args.baseline == "none":
        return 0
    if args.baseline == "auto":
        baseline_path = find_previous_report(args.out_dir, exclude=saved)
        if baseline_path is None:
            print("\nno previous BENCH_*.json found; nothing to diff")
            return 0
    else:
        baseline_path = Path(args.baseline)
    comparison = compare_reports(
        load_report(baseline_path), report, fail_factor=args.fail_factor
    )
    if saved is not None:
        # Embed both verdicts (raw and calibration-normalized) in the
        # saved report so the artifact records how the gate was judged,
        # not just the measurements.  load_report ignores unknown keys.
        import json

        payload = json.loads(saved.read_text())
        payload["comparison"] = comparison.to_dict()
        payload["comparison"]["baseline"] = str(baseline_path)
        saved.write_text(json.dumps(payload, indent=1, sort_keys=True))
    print()
    print(f"baseline: {baseline_path}")
    print(comparison.render())
    return 1 if comparison.regressed else 0


_COMMANDS = {
    "run": _cmd_run,
    "compare": _cmd_compare,
    "figures": _cmd_figures,
    "tables": _cmd_tables,
    "list": _cmd_list,
    "validate": _cmd_validate,
    "sweep": _cmd_sweep,
    "worker": _cmd_worker,
    "queue": _cmd_queue,
    "serve": _cmd_serve,
    "replay": _cmd_replay,
    "bench": _cmd_bench,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
