"""The assembled multi-GPU machine.

``Machine`` wires every substrate together — GPUs, fabric, IOMMU, page
table, driver, dispatcher — under one engine, runs a workload's kernels to
completion, and exposes the collectors the harness turns into results.
"""

from __future__ import annotations

from typing import Optional

from repro.config.hyperparams import GriffinHyperParams
from repro.config.system import SystemConfig
from repro.core.policies import PolicyConfig, get_policy
from repro.driver.driver import GPUDriver
from repro.gpu.dispatcher import Dispatcher
from repro.gpu.gpu import GPU
from repro.gpu.pmc import PageMigrationController
from repro.gpu.wavefront import Kernel
from repro.interconnect.arbiter import BiasedArbiter
from repro.interconnect.link import InterconnectFabric
from repro.metrics.timeline import MigrationEvent, PageAccessTimeline
from repro.sim.engine import Engine
from repro.sim.resource import ThroughputResource
from repro.system.access_path import MemoryAccessPath
from repro.vm.iommu import IOMMU
from repro.vm.page_table import PageTable
from repro.vm.shootdown import ShootdownAccounting


class Machine:
    """A complete simulated NUMA multi-GPU system."""

    def __init__(
        self,
        config: SystemConfig,
        policy: PolicyConfig | str = "baseline",
        hyper: Optional[GriffinHyperParams] = None,
        timeline_bucket: int = 10_000,
        watch_pages=None,
        dispatch_strategy: str = "round_robin",
    ) -> None:
        if isinstance(policy, str):
            policy = get_policy(policy)
        self.config = config
        self.policy = policy
        self.hyper = hyper or GriffinHyperParams()
        self.num_gpus = config.num_gpus

        self.engine = Engine()
        self.page_table = PageTable(config.num_gpus, config.page_size)
        self.fabric = InterconnectFabric(
            config.link, config.num_gpus, config.gpu.clock_ghz
        )
        self.arbiter = BiasedArbiter(config.num_gpus, bias=config.arbiter_bias)
        self.iommu = IOMMU(self.engine, config.iommu, self.fabric, self.arbiter)
        # CPU DRAM serving GPU DCA traffic (DDR-class bandwidth).
        self.cpu_memory = ThroughputResource("cpu.dram", 16.0)
        self.shootdowns = ShootdownAccounting()
        self.timeline = PageAccessTimeline(
            config.num_gpus, timeline_bucket, watch_pages
        )
        self.migration_events: list[MigrationEvent] = []

        self.access_path = MemoryAccessPath(self)
        self.iommu.resolver = self.access_path.resolve

        self.gpus: list[GPU] = []
        self.dispatcher = Dispatcher(
            self.engine,
            self.gpus,
            config.dispatch_skew_cycles,
            on_all_done=self._on_all_done,
            strategy=dispatch_strategy,
        )
        for gpu_id in range(config.num_gpus):
            self.gpus.append(
                GPU(
                    self.engine,
                    gpu_id,
                    config.gpu,
                    config.timing,
                    self.hyper,
                    config.page_size,
                    self.access_path.issue,
                    self.dispatcher.workgroup_complete,
                )
            )
        self.pmc = PageMigrationController(
            self.engine, self.fabric, config.page_size
        )
        self.driver = GPUDriver(self, policy)

        self.finish_time: Optional[float] = None

    # ------------------------------------------------------------------

    def record_migration(self, now: float, page: int, src: int, dst: int) -> None:
        """Log one completed page migration (Figure 10 overlay data)."""
        self.migration_events.append(MigrationEvent(now, page, src, dst))

    def _on_all_done(self, now: float) -> None:
        self.finish_time = now
        self.driver.stop()
        self.engine.stop()

    def run(self, kernels: list[Kernel], max_events: Optional[int] = None) -> float:
        """Execute the kernel sequence to completion.

        Returns the makespan in cycles.
        """
        self.driver.start()
        self.dispatcher.run_kernels(kernels)
        self.engine.run(max_events=max_events)
        if self.finish_time is None:
            raise RuntimeError(
                "simulation ended without completing all workgroups "
                f"(events executed: {self.engine.events_executed}, "
                f"pending: {self.engine.pending_events()})"
            )
        return self.finish_time

    # ------------------------------------------------------------------
    # Collected results
    # ------------------------------------------------------------------

    def occupancy_snapshot(self):
        from repro.metrics.occupancy import OccupancySnapshot

        counts = self.page_table.gpu_page_counts()
        cpu_pages = sum(
            1 for _ in self.page_table.known_pages()
        ) - sum(counts)
        return OccupancySnapshot(tuple(counts), cpu_pages)
