"""The assembled multi-GPU machine.

``Machine`` wires every substrate together — GPUs, fabric, IOMMU, page
table, driver, dispatcher — under one engine, runs a workload's kernels to
completion, and exposes the collectors the harness turns into results.
"""

from __future__ import annotations

import dataclasses
from functools import partial
from typing import Optional

from repro.config.faults import FaultConfig
from repro.config.hyperparams import GriffinHyperParams
from repro.config.system import SystemConfig
from repro.core.policies import PolicyConfig, get_policy
from repro.driver.driver import GPUDriver
from repro.gpu.dispatcher import Dispatcher
from repro.gpu.gpu import GPU
from repro.gpu.pmc import PageMigrationController
from repro.gpu.wavefront import Kernel
from repro.interconnect.arbiter import BiasedArbiter
from repro.interconnect.link import InterconnectFabric
from repro.metrics.timeline import MigrationEvent, PageAccessTimeline
from repro.resilience.injector import FaultInjector
from repro.sim.engine import Engine, SimulationStall
from repro.sim.backends import build_engine, resolve_backend
from repro.sim.resource import ThroughputResource
from repro.system.access_path import MemoryAccessPath
from repro.vm.iommu import IOMMU
from repro.vm.page_table import PageTable
from repro.vm.shootdown import ShootdownAccounting

# Knobs consumed exclusively by the periodic migration phase — i.e. read
# for the first time at t = migration_period, never during warm-up.  Two
# (policy, hyper) variants that agree on everything *except* these fields
# produce byte-identical simulations up to any cycle before the first
# migration phase, so a warm prefix can be shared and forked per variant
# (see docs/performance.md, "Sweep throughput").
#
# Deliberately absent: ``alpha`` and ``t_ac`` feed the EWMA during every
# collection period; ``n_ptw``/``fault_batch_timeout`` shape CPU fault
# batching from cycle 0; ``counter_*`` are baked into the Shader Engine
# tables at construction; ``migration_period`` determines the fork point
# itself.  ``PredictiveMigration.observe`` reads ``lambda_t`` each
# collection period, so predictive policies must not fork across
# lambda variants (the sweep runs them cold).
LATE_HYPER_FIELDS = frozenset({
    "lambda_d",
    "lambda_s",
    "lambda_t",
    "shared_min_share",
    "trend_fraction",
    "max_pages_per_round",
    "min_pages_per_source",
    "max_source_gpus_per_round",
})

# Policy fields a forked variant may change: the drain strategy is first
# consulted when the first migration round executes, and the name is
# display-only.
LATE_POLICY_FIELDS = frozenset({"name", "drain"})


def variant_mismatches(
    policy_a: PolicyConfig,
    hyper_a: GriffinHyperParams,
    policy_b: PolicyConfig,
    hyper_b: GriffinHyperParams,
) -> list[str]:
    """Fields that make two variants unsafe to fork from one prefix."""
    bad: list[str] = []
    for f in dataclasses.fields(GriffinHyperParams):
        if f.name in LATE_HYPER_FIELDS:
            continue
        if getattr(hyper_a, f.name) != getattr(hyper_b, f.name):
            bad.append(f"hyper.{f.name}")
    for f in dataclasses.fields(PolicyConfig):
        if f.name in LATE_POLICY_FIELDS:
            continue
        if getattr(policy_a, f.name) != getattr(policy_b, f.name):
            bad.append(f"policy.{f.name}")
    return bad


class Machine:
    """A complete simulated NUMA multi-GPU system."""

    def __init__(
        self,
        config: SystemConfig,
        policy: PolicyConfig | str = "baseline",
        hyper: Optional[GriffinHyperParams] = None,
        timeline_bucket: int = 10_000,
        watch_pages=None,
        dispatch_strategy: str = "round_robin",
        faults: Optional[FaultConfig] = None,
        fault_seed: int = 0,
    ) -> None:
        if isinstance(policy, str):
            policy = get_policy(policy)
        self.config = config
        self.policy = policy
        self.hyper = hyper or GriffinHyperParams()
        self.num_gpus = config.num_gpus

        # Event-core backend: config-selected, env-overridable (the
        # ring-parity CI job replays the whole suite on the ring this way).
        self.engine = build_engine(resolve_backend(config.sim.engine_backend))
        # Fault injection: a disabled (or absent) FaultConfig leaves every
        # component un-hooked so clean runs stay byte-identical.
        self.faults = faults if faults is not None and faults.enabled else None
        self.fault_injector = (
            FaultInjector(self.engine, self.faults, fault_seed)
            if self.faults is not None else None
        )
        self.page_table = PageTable(config.num_gpus, config.page_size)
        self.fabric = InterconnectFabric(
            config.link, config.num_gpus, config.gpu.clock_ghz
        )
        self.fabric.injector = self.fault_injector
        self.arbiter = BiasedArbiter(config.num_gpus, bias=config.arbiter_bias)
        self.iommu = IOMMU(self.engine, config.iommu, self.fabric, self.arbiter)
        # CPU DRAM serving GPU DCA traffic (DDR-class bandwidth).
        self.cpu_memory = ThroughputResource("cpu.dram", 16.0)
        self.shootdowns = ShootdownAccounting()
        self.timeline = PageAccessTimeline(
            config.num_gpus, timeline_bucket, watch_pages
        )
        self.migration_events: list[MigrationEvent] = []

        self.access_path = MemoryAccessPath(self)
        self.iommu.resolver = self.access_path.resolve

        self.gpus: list[GPU] = []
        self.dispatcher = Dispatcher(
            self.engine,
            self.gpus,
            config.dispatch_skew_cycles,
            on_all_done=self._on_all_done,
            strategy=dispatch_strategy,
        )
        for gpu_id in range(config.num_gpus):
            self.gpus.append(
                GPU(
                    self.engine,
                    gpu_id,
                    config.gpu,
                    config.timing,
                    self.hyper,
                    config.page_size,
                    self.access_path.issue,
                    self.dispatcher.workgroup_complete,
                )
            )
        if self.fault_injector is not None:
            injector = self.fault_injector
            for gpu in self.gpus:
                if injector.has_throttle(gpu.gpu_id):
                    fn = partial(injector.throttle_factor, gpu.gpu_id)
                    for cu in gpu.all_cus():
                        cu.throttle_fn = fn
        self.pmc = PageMigrationController(
            self.engine, self.fabric, config.page_size
        )
        self.driver = GPUDriver(self, policy)

        self.finish_time: Optional[float] = None
        # Sanitizer runtime (repro.check.runtime.CheckRuntime) — attached
        # by the checked harness path; None on ordinary runs so no hook
        # fires anywhere on the hot path.
        self.checks = None

    # ------------------------------------------------------------------

    def record_migration(self, now: float, page: int, src: int, dst: int) -> None:
        """Log one completed page migration (Figure 10 overlay data)."""
        self.migration_events.append(MigrationEvent(now, page, src, dst))

    def _on_all_done(self, now: float) -> None:
        self.finish_time = now
        self.driver.stop()
        self.engine.stop()
        if self.checks is not None:
            self.checks.on_finish(now)

    def __getstate__(self):
        """Snapshots never carry the sanitizer runtime.

        The check runtime holds its own snapshots (and a live ring
        buffer); pickling it into a MachineSnapshot would recurse and
        bloat every capture.  Replay re-attaches a fresh runtime.
        """
        state = self.__dict__.copy()
        state["checks"] = None
        return state

    def run(
        self,
        kernels: list[Kernel],
        max_events: Optional[int] = None,
        stall_threshold: Optional[int] = 1_000_000,
    ) -> float:
        """Execute the kernel sequence to completion.

        Args:
            max_events: Per-run event budget.  Exhausting it raises
                :class:`SimulationStall` (the engine's ``exhausted`` flag
                distinguishes it from a clean drain) instead of silently
                returning a half-finished simulation.
            stall_threshold: Engine watchdog — consecutive zero-progress
                events tolerated before declaring livelock (None disables).

        Returns the makespan in cycles.
        """
        self.start(kernels)
        return self.finish(max_events=max_events, stall_threshold=stall_threshold)

    def start(self, kernels: list[Kernel]) -> None:
        """Arm the driver and dispatch; pair with ``run_until``/``finish``."""
        self.driver.start()
        self.dispatcher.run_kernels(kernels)

    def run_until(
        self,
        cycle: float,
        max_events: Optional[int] = None,
        stall_threshold: Optional[int] = 1_000_000,
    ) -> None:
        """Advance the simulation up to and including cycle ``cycle``.

        Executes every event with ``time <= cycle`` and pauses; events
        scheduled later stay queued, so a subsequent ``finish`` (possibly
        on a forked copy) continues byte-identically to an uninterrupted
        run.  Returns early if the workload completes first.
        """
        self.engine.run(
            until=cycle, max_events=max_events, stall_threshold=stall_threshold
        )
        if self.engine.exhausted:
            raise SimulationStall(
                f"simulation exhausted its event budget ({max_events} events) "
                f"before reaching cycle {cycle:.0f} "
                f"(t={self.engine.now:.0f}, "
                f"pending: {self.engine.pending_events()})",
                self.engine.dump_pending(),
            )

    def finish(
        self,
        max_events: Optional[int] = None,
        stall_threshold: Optional[int] = 1_000_000,
    ) -> float:
        """Run the (possibly already-started) simulation to completion."""
        self.engine.run(max_events=max_events, stall_threshold=stall_threshold)
        if self.engine.exhausted:
            raise SimulationStall(
                f"simulation exhausted its event budget ({max_events} events) "
                "without completing all workgroups "
                f"(t={self.engine.now:.0f}, "
                f"pending: {self.engine.pending_events()})",
                self.engine.dump_pending(),
            )
        if self.finish_time is None:
            raise RuntimeError(
                "simulation ended without completing all workgroups "
                f"(events executed: {self.engine.events_executed}, "
                f"pending: {self.engine.pending_events()})"
            )
        return self.finish_time

    # ------------------------------------------------------------------
    # Snapshot / fork support
    # ------------------------------------------------------------------

    def shared_snapshot_objects(self) -> list:
        """Objects a snapshot stores by reference instead of by value.

        The workload trace — kernels, workgroups, wavefront traces and
        their access lists — is immutable once built (only the per-CU
        cursor *index* advances), so every fork of a prefix can share one
        copy instead of re-pickling what is by far the largest part of
        the machine state.
        """
        shared: list = []
        for kernel in self.dispatcher._kernels:
            shared.append(kernel)
            for wg in kernel.workgroups:
                shared.append(wg)
                for trace in wg.wavefronts:
                    shared.append(trace)
                    shared.append(trace.accesses)
        return shared

    def snapshot(self):
        """Capture full simulation state as a picklable, forkable value."""
        from repro.sim.snapshot import MachineSnapshot

        return MachineSnapshot.capture(self)

    def adopt_variant(
        self,
        policy: PolicyConfig | str,
        hyper: Optional[GriffinHyperParams] = None,
    ) -> None:
        """Swap in a (policy, hyper) variant on a forked machine.

        Only fields first consulted by the periodic migration phase
        (``LATE_HYPER_FIELDS`` / ``LATE_POLICY_FIELDS``) may differ from
        the values the prefix ran with; anything else would make the
        shared prefix a lie, so it raises instead.
        """
        if isinstance(policy, str):
            policy = get_policy(policy)
        hyper = hyper or GriffinHyperParams()
        bad = variant_mismatches(self.policy, self.hyper, policy, hyper)
        if bad:
            raise ValueError(
                "variant differs from the prefix in fields the warm-up "
                f"already consumed: {', '.join(bad)}"
            )
        self.policy = policy
        self.hyper = hyper
        driver = self.driver
        driver.policy = policy
        driver.dpc.hyper = hyper
        driver.planner.hyper = hyper
        if driver.predictor is not None:
            driver.predictor.hyper = hyper

    # ------------------------------------------------------------------
    # Collected results
    # ------------------------------------------------------------------

    def occupancy_snapshot(self):
        from repro.metrics.occupancy import OccupancySnapshot

        counts = self.page_table.gpu_page_counts()
        cpu_pages = sum(
            1 for _ in self.page_table.known_pages()
        ) - sum(counts)
        return OccupancySnapshot(tuple(counts), cpu_pages)
