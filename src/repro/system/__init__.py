"""System assembly: the complete simulated multi-GPU machine."""

from repro.system.access_path import MemoryAccessPath
from repro.system.machine import Machine

__all__ = ["Machine", "MemoryAccessPath"]
