"""The memory access path: what happens to one post-coalescing transaction.

This implements the paper's Figures 3 and 4 end to end:

1. The CU issues; the Shader Engine access counter records the page
   (pre-translation, as the VIPT L1 requires).
2. L1 TLB, then L2 TLB.  TLBs only ever hold *local* translations, so any
   hit is a local access (L1 -> L2 -> HBM).
3. On an L2 TLB miss the request crosses the fabric to the IOMMU and
   queues for a page-table walker.
4. Resolution:
   * page on the requesting GPU -> translation reply, cached in the TLBs,
     local access;
   * page on a remote GPU -> remote physical address returned (never
     cached), Direct Cache Access through the remote RDMA engine;
   * page on the CPU -> the driver decides (first-touch migrate, DFTM DCA
     denial, or CPMS-batched migration);
   * page data in transfer -> the access waits for the migration.

Every leg of an access is its own engine event fired at the leg's start
time, so shared resources (link ports, walkers, DRAM channels) are always
acquired in simulated-time order.  Composing a whole chain analytically at
issue time would acquire resources at future timestamps out of order and
manufacture queueing that does not exist.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.interconnect.link import CPU_PORT
from repro.mem.access import AccessKind, MemoryTransaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.system.machine import Machine

DATA_MSG_BYTES = 64


class MemoryAccessPath:
    """Routes transactions through translation and data access."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self._page_shift = machine.config.page_size.bit_length() - 1
        self.kind_counts: dict[AccessKind, int] = {k: 0 for k in AccessKind}
        self.l1_tlb_hits = 0
        self.l2_tlb_hits = 0
        self.iommu_trips = 0
        self.total_issued = 0

    def _at(self, time: float, callback: Callable, *args) -> None:
        """Schedule a leg at ``time`` (clamped to the present)."""
        engine = self.machine.engine
        engine.schedule_at(max(time, engine.now), callback, *args)

    # ------------------------------------------------------------------
    # Issue side (called synchronously by CUs)
    # ------------------------------------------------------------------

    def issue(self, txn: MemoryTransaction, on_complete: Callable) -> None:
        """Entry point handed to every CU as its ``issue_fn``."""
        machine = self.machine
        page = txn.address >> self._page_shift
        txn.page = page
        self.total_issued += 1

        gpu = machine.gpus[txn.gpu_id]
        gpu.record_se_access(txn.cu_id, page)
        gpu.cu(txn.cu_id).note_translated(txn)
        machine.timeline.record(machine.engine.now, txn.gpu_id, page)

        now = machine.engine.now
        l1_tlb = gpu.l1_tlbs[txn.cu_id]
        t = now + gpu.config.l1_tlb.latency
        if l1_tlb.lookup(page):
            self.l1_tlb_hits += 1
            self._at(t, self._local_leg, txn, on_complete)
            return
        t += gpu.config.l2_tlb.latency
        if gpu.l2_tlb.lookup(page):
            self.l2_tlb_hits += 1
            l1_tlb.insert(page, txn.gpu_id)
            self._at(t, self._local_leg, txn, on_complete)
            return
        self.iommu_trips += 1
        machine.iommu.translate(txn, t, on_complete)

    # ------------------------------------------------------------------
    # IOMMU resolution (wired as machine.iommu.resolver; fires at
    # walk-completion time)
    # ------------------------------------------------------------------

    def resolve(self, txn: MemoryTransaction, walk_done: float, on_complete: Callable) -> None:
        """Translation walked; route by page residency."""
        machine = self.machine
        entry = machine.page_table.entry(txn.page)

        if entry.migrating:
            machine.driver.wait_for_page(txn.page, txn, on_complete)
            return

        location = entry.device
        if location == txn.gpu_id:
            reply = machine.iommu.reply_time(machine.engine.now, txn.gpu_id)
            gpu = machine.gpus[txn.gpu_id]
            gpu.l2_tlb.insert(txn.page, location)
            gpu.l1_tlbs[txn.cu_id].insert(txn.page, location)
            self._at(reply, self._local_leg, txn, on_complete)
            return
        if location >= 0:
            # Remote GPU: physical address returned but never cached.
            reply = machine.iommu.reply_time(machine.engine.now, txn.gpu_id)
            if txn.kind is None:
                txn.kind = AccessKind.REMOTE_DCA
            self._at(reply, self._remote_request_leg, txn, location, on_complete)
            return
        machine.driver.handle_cpu_fault(txn, machine.engine.now, on_complete)

    # ------------------------------------------------------------------
    # Access legs (each fires at its own start time)
    # ------------------------------------------------------------------

    def _finish(self, txn: MemoryTransaction, finish_time: float, on_complete: Callable) -> None:
        self._at(finish_time, on_complete, txn, finish_time)

    def _local_leg(self, txn: MemoryTransaction, on_complete: Callable) -> None:
        if txn.kind is None:
            txn.kind = AccessKind.LOCAL
        self.kind_counts[txn.kind] += 1
        machine = self.machine
        gpu = machine.gpus[txn.gpu_id]
        finish = gpu.hierarchy.local_access(
            machine.engine.now, txn.cu_id, txn.address, txn.is_write
        )
        self._finish(txn, finish, on_complete)

    def _remote_request_leg(self, txn: MemoryTransaction, owner: int, on_complete: Callable) -> None:
        machine = self.machine
        hierarchy = machine.gpus[txn.gpu_id].hierarchy
        if not txn.is_write:
            # CARVE-style remote cache: serve remote reads locally.
            hit = hierarchy.remote_cache_lookup(machine.engine.now, txn.address)
            if hit >= 0:
                txn.kind = AccessKind.REMOTE_CACHE
                self.kind_counts[AccessKind.REMOTE_CACHE] += 1
                self._finish(txn, hit, on_complete)
                return
        elif hierarchy.remote_cache is not None:
            # Remote write: any locally cached copy becomes stale.
            hierarchy.remote_cache.invalidate_address(txn.address)
        self.kind_counts[AccessKind.REMOTE_DCA] += 1
        arrive = machine.fabric.transfer(
            machine.engine.now, txn.gpu_id, owner, DATA_MSG_BYTES
        )
        self._at(arrive, self._remote_service_leg, txn, owner, on_complete)

    def _remote_service_leg(self, txn: MemoryTransaction, owner: int, on_complete: Callable) -> None:
        machine = self.machine
        served = machine.gpus[owner].rdma.service(
            machine.engine.now, txn.address, txn.is_write
        )
        self._at(served, self._remote_response_leg, txn, owner, on_complete)

    def _remote_response_leg(self, txn: MemoryTransaction, owner: int, on_complete: Callable) -> None:
        machine = self.machine
        arrive = machine.fabric.transfer(
            machine.engine.now, owner, txn.gpu_id, DATA_MSG_BYTES
        )
        if not txn.is_write:
            machine.gpus[txn.gpu_id].hierarchy.remote_cache_fill(txn.address)
        self._finish(txn, arrive, on_complete)

    # CPU DCA (DFTM denial path) -----------------------------------------

    def cpu_dca_access(self, txn: MemoryTransaction, start: float, on_complete: Callable) -> None:
        """DCA to CPU memory; ``start`` is when the translation reply lands."""
        self.kind_counts[AccessKind.CPU_DCA] += 1
        self._at(start, self._cpu_request_leg, txn, on_complete)

    def _cpu_request_leg(self, txn: MemoryTransaction, on_complete: Callable) -> None:
        machine = self.machine
        arrive = machine.fabric.transfer(
            machine.engine.now, txn.gpu_id, CPU_PORT, DATA_MSG_BYTES
        )
        self._at(arrive, self._cpu_service_leg, txn, on_complete)

    def _cpu_service_leg(self, txn: MemoryTransaction, on_complete: Callable) -> None:
        machine = self.machine
        served = (
            machine.cpu_memory.acquire(machine.engine.now, DATA_MSG_BYTES)
            + machine.config.timing.cpu_mem_latency
        )
        self._at(served, self._cpu_response_leg, txn, on_complete)

    def _cpu_response_leg(self, txn: MemoryTransaction, on_complete: Callable) -> None:
        machine = self.machine
        arrive = machine.fabric.transfer(
            machine.engine.now, CPU_PORT, txn.gpu_id, DATA_MSG_BYTES
        )
        self._finish(txn, arrive, on_complete)

    # Post-migration routing ----------------------------------------------

    def route_after_migration(self, txn: MemoryTransaction, start: float, on_complete: Callable) -> None:
        """Resume an access that waited for a page migration."""
        machine = self.machine
        location = machine.page_table.location(txn.page)
        if location == txn.gpu_id:
            gpu = machine.gpus[txn.gpu_id]
            gpu.l2_tlb.insert(txn.page, location)
            gpu.l1_tlbs[txn.cu_id].insert(txn.page, location)
            if txn.kind is None:
                txn.kind = AccessKind.FAULT_MIGRATE
            self._at(start, self._local_leg, txn, on_complete)
            return
        if location >= 0:
            txn.kind = AccessKind.REMOTE_DCA
            self._at(start, self._remote_request_leg, txn, location, on_complete)
            return
        # Still CPU-resident (page bounced back); serve via CPU DCA.
        txn.kind = AccessKind.CPU_DCA
        self.kind_counts[AccessKind.CPU_DCA] += 1
        self._at(start, self._cpu_request_leg, txn, on_complete)

    # ------------------------------------------------------------------

    def local_fraction(self) -> float:
        """Fraction of transactions serviced from local GPU memory."""
        total = sum(self.kind_counts.values())
        if total == 0:
            return 0.0
        local = (
            self.kind_counts[AccessKind.LOCAL]
            + self.kind_counts[AccessKind.FAULT_MIGRATE]
            + self.kind_counts[AccessKind.REMOTE_CACHE]
        )
        return local / total
