"""The memory access path: what happens to one post-coalescing transaction.

This implements the paper's Figures 3 and 4 end to end:

1. The CU issues; the Shader Engine access counter records the page
   (pre-translation, as the VIPT L1 requires).
2. L1 TLB, then L2 TLB.  TLBs only ever hold *local* translations, so any
   hit is a local access (L1 -> L2 -> HBM).
3. On an L2 TLB miss the request crosses the fabric to the IOMMU and
   queues for a page-table walker.
4. Resolution:
   * page on the requesting GPU -> translation reply, cached in the TLBs,
     local access;
   * page on a remote GPU -> remote physical address returned (never
     cached), Direct Cache Access through the remote RDMA engine;
   * page on the CPU -> the driver decides (first-touch migrate, DFTM DCA
     denial, or CPMS-batched migration);
   * page data in transfer -> the access waits for the migration.

Every leg of an access is its own engine event fired at the leg's start
time, so shared resources (link ports, walkers, DRAM channels) are always
acquired in simulated-time order.  Composing a whole chain analytically at
issue time would acquire resources at future timestamps out of order and
manufacture queueing that does not exist.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.interconnect.link import CPU_PORT
from heapq import heappush as _heappush

from repro.mem.access import AccessKind, MemoryTransaction
from repro.sim.compiled import CompiledQueue
from repro.sim.ring import EventRing

if TYPE_CHECKING:  # pragma: no cover
    from repro.system.machine import Machine

DATA_MSG_BYTES = 64


class MemoryAccessPath:
    """Routes transactions through translation and data access."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self._engine = machine.engine
        self._equeue = machine.engine._queue
        self._page_shift = machine.config.page_size.bit_length() - 1
        self._l1_tlb_latency = machine.config.gpu.l1_tlb.latency
        self._l2_tlb_latency = machine.config.gpu.l2_tlb.latency
        self._cpu_mem_latency = machine.config.timing.cpu_mem_latency
        self._cpu_memory = machine.cpu_memory
        self._fabric_transfer = machine.fabric.transfer
        self._timeline_record = machine.timeline.record
        # With no watch set, a timeline record is just a totals bump; the
        # dict is prebound so issue() can do it without the call.
        timeline = machine.timeline
        self._tl_totals = timeline._totals if timeline._watch_none else None
        self._reply_time = machine.iommu.reply_time
        self._page_table = machine.page_table
        # Per-device dispatch tables (bound methods and components indexed
        # by gpu_id / cu_id).  The GPUs are built after this object — each
        # receives ``issue`` as its issue_fn — so the tables are filled
        # lazily on the first transaction.
        self._push_entry = machine.engine._queue.push_entry
        self._push_lane = machine.engine._queue.push_lane
        # Non-None iff the machine runs the ring backend: the inlined
        # scheduling sites below branch to ring._place instead of building
        # heap entries (the heap internals they poke do not exist there).
        self._ringq = self._equeue if isinstance(self._equeue, EventRing) else None
        # Non-None iff the machine runs the compiled backend: the same
        # sites branch to the C core's _sched/push_entry, which do the
        # whole clamp-and-route entry build in one call.
        self._cq = (
            self._equeue
            if CompiledQueue is not None
            and isinstance(self._equeue, CompiledQueue)
            else None
        )
        self._se_record: list = []
        self._note: list = []
        self._l1: list = []
        self._l2: list = []
        self._hier: list = []
        self._rdma_service: list = []
        # Counters keyed by member identity: ``id(kind)`` hashes at C
        # speed, where an AccessKind key would call the Python-level
        # ``Enum.__hash__`` on every bump.  ``kind_counts`` rebuilds the
        # enum-keyed view (in enum order, as before) on demand.
        self._kc: dict[int, int] = {id(k): 0 for k in AccessKind}
        # Sanitizer tap — None on ordinary runs; the checked path attaches
        # the CheckRuntime here so issue() can flag CU activity during an
        # ACUD drain.
        self._checks = None
        self.l1_tlb_hits = 0
        self.l2_tlb_hits = 0
        self.iommu_trips = 0
        self.total_issued = 0

    def _bind_gpus(self) -> None:
        """Snapshot per-GPU hot references (topology is fixed after build)."""
        for gpu in self.machine.gpus:
            recs, notes = [], []
            for se in gpu.shader_engines:
                for cu in se.cus:
                    recs.append(se.counters.record)
                    notes.append(cu._outstanding_by_page)
            self._se_record.append(recs)
            self._note.append(notes)
            self._l1.append(gpu.l1_tlbs)
            self._l2.append(gpu.l2_tlb)
            self._hier.append(gpu.hierarchy)
            self._rdma_service.append(gpu.rdma.service)

    def _at(self, time: float, callback: Callable, *args) -> None:
        """Schedule a leg at ``time`` (clamped to the present)."""
        engine = self._engine
        now = engine._now
        if time <= now:
            self._equeue.push_lane(now, callback, args)
        else:
            self._equeue.push_entry(time, 0, callback, args)

    # ------------------------------------------------------------------
    # Issue side (called synchronously by CUs)
    # ------------------------------------------------------------------

    def issue(self, txn: MemoryTransaction, on_complete: Callable) -> None:
        """Entry point handed to every CU as its ``issue_fn``."""
        se_record = self._se_record
        if not se_record:
            self._bind_gpus()
            se_record = self._se_record
        page = txn.address >> self._page_shift
        txn.page = page
        self.total_issued += 1
        ck = self._checks
        if ck is not None:
            ck.on_issue(txn)

        gpu_id = txn.gpu_id
        cu_id = txn.cu_id
        se_record[gpu_id][cu_id](page)
        # Inlined ComputeUnit.note_translated (ACUD's in-flight page scan).
        obp = self._note[gpu_id][cu_id]
        try:
            obp[page] += 1
        except KeyError:
            obp[page] = 1
        now = self._engine._now
        tl_totals = self._tl_totals
        if tl_totals is not None:
            # Inlined PageAccessTimeline.record for the no-watch case.
            try:
                tl_totals[page][gpu_id] += 1
            except KeyError:
                self._timeline_record(now, gpu_id, page)
        else:
            self._timeline_record(now, gpu_id, page)

        l1_tlb = self._l1[gpu_id][cu_id]
        t = now + self._l1_tlb_latency
        # Inline the TLB's MRU memo probe; fall back to the full lookup.
        if page == l1_tlb._mru_page:
            l1_tlb.hits += 1
            hit = True
        else:
            hit = l1_tlb.lookup(page)
        if hit:
            self.l1_tlb_hits += 1
            # t > now always (positive TLB latency): straight to the heap
            # (entry build inlined; this is the hottest schedule site).
            ringq = self._ringq
            if ringq is not None:
                ringq._place(t, 0, self._local_leg, (txn, on_complete), None)
                return
            cq = self._cq
            if cq is not None:
                cq.push_entry(t, 0, self._local_leg, (txn, on_complete))
                return
            q = self._equeue
            seq = q._seq
            q._seq = seq + 1
            pool = q._pool
            if pool:
                entry = pool.pop()
                entry[0] = t
                entry[1] = 0
                entry[2] = seq
                entry[3] = self._local_leg
                entry[4] = (txn, on_complete)
            else:
                entry = [t, 0, seq, self._local_leg, (txn, on_complete), None]
            _heappush(q._heap, entry)
            q._live += 1
            return
        t += self._l2_tlb_latency
        l2_tlb = self._l2[gpu_id]
        if page == l2_tlb._mru_page:
            l2_tlb.hits += 1
            hit = True
        else:
            hit = l2_tlb.lookup(page)
        if hit:
            self.l2_tlb_hits += 1
            l1_tlb.insert(page, gpu_id)
            ringq = self._ringq
            if ringq is not None:
                ringq._place(t, 0, self._local_leg, (txn, on_complete), None)
                return
            cq = self._cq
            if cq is not None:
                cq.push_entry(t, 0, self._local_leg, (txn, on_complete))
                return
            q = self._equeue
            seq = q._seq
            q._seq = seq + 1
            pool = q._pool
            if pool:
                entry = pool.pop()
                entry[0] = t
                entry[1] = 0
                entry[2] = seq
                entry[3] = self._local_leg
                entry[4] = (txn, on_complete)
            else:
                entry = [t, 0, seq, self._local_leg, (txn, on_complete), None]
            _heappush(q._heap, entry)
            q._live += 1
            return
        self.iommu_trips += 1
        self.machine.iommu.translate(txn, t, on_complete)

    # ------------------------------------------------------------------
    # IOMMU resolution (wired as machine.iommu.resolver; fires at
    # walk-completion time)
    # ------------------------------------------------------------------

    def resolve(self, txn: MemoryTransaction, walk_done: float, on_complete: Callable) -> None:
        """Translation walked; route by page residency."""
        if not self._l2:
            self._bind_gpus()
        entry = self._page_table.entry(txn.page)

        if entry.migrating:
            self.machine.driver.wait_for_page(txn.page, txn, on_complete)
            return

        location = entry.device
        if location == txn.gpu_id:
            reply = self._reply_time(self._engine._now, txn.gpu_id)
            self._l2[txn.gpu_id].insert(txn.page, location)
            self._l1[txn.gpu_id][txn.cu_id].insert(txn.page, location)
            self._at(reply, self._local_leg, txn, on_complete)
            return
        if location >= 0:
            # Remote GPU: physical address returned but never cached.
            reply = self._reply_time(self._engine._now, txn.gpu_id)
            if txn.kind is None:
                txn.kind = AccessKind.REMOTE_DCA
            self._at(reply, self._remote_request_leg, txn, location, on_complete)
            return
        self.machine.driver.handle_cpu_fault(txn, self._engine._now, on_complete)

    # ------------------------------------------------------------------
    # Access legs (each fires at its own start time)
    # ------------------------------------------------------------------

    def _finish(self, txn: MemoryTransaction, finish_time: float, on_complete: Callable) -> None:
        self._at(finish_time, on_complete, txn, finish_time)

    def _local_leg(self, txn: MemoryTransaction, on_complete: Callable) -> None:
        if txn.kind is None:
            txn.kind = AccessKind.LOCAL
        self._kc[id(txn.kind)] += 1
        finish = self._hier[txn.gpu_id].local_access(
            self._engine._now, txn.cu_id, txn.address, txn.is_write
        )
        now = self._engine._now
        ringq = self._ringq
        if ringq is not None:
            ringq._place(finish if finish > now else now, 0, on_complete,
                         (txn, finish), None)
            return
        cq = self._cq
        if cq is not None:
            cq._sched(now, finish, on_complete, (txn, finish))
            return
        q = self._equeue
        seq = q._seq
        q._seq = seq + 1
        pool = q._pool
        if pool:
            entry = pool.pop()
            entry[0] = finish if finish > now else now
            entry[1] = 0
            entry[2] = seq
            entry[3] = on_complete
            entry[4] = (txn, finish)
        else:
            entry = [finish if finish > now else now, 0, seq, on_complete,
                     (txn, finish), None]
        if finish <= now:
            q._lane.append(entry)
        else:
            _heappush(q._heap, entry)
        q._live += 1

    def _remote_request_leg(self, txn: MemoryTransaction, owner: int, on_complete: Callable) -> None:
        hierarchy = self._hier[txn.gpu_id]
        if not txn.is_write:
            # CARVE-style remote cache: serve remote reads locally.
            hit = hierarchy.remote_cache_lookup(self._engine._now, txn.address)
            if hit >= 0:
                txn.kind = AccessKind.REMOTE_CACHE
                self._kc[id(AccessKind.REMOTE_CACHE)] += 1
                now = self._engine._now
                ringq = self._ringq
                if ringq is not None:
                    ringq._place(hit if hit > now else now, 0, on_complete,
                                 (txn, hit), None)
                    return
                cq = self._cq
                if cq is not None:
                    cq._sched(now, hit, on_complete, (txn, hit))
                    return
                q = self._equeue
                seq = q._seq
                q._seq = seq + 1
                pool = q._pool
                if pool:
                    entry = pool.pop()
                    entry[0] = hit if hit > now else now
                    entry[1] = 0
                    entry[2] = seq
                    entry[3] = on_complete
                    entry[4] = (txn, hit)
                else:
                    entry = [hit if hit > now else now, 0, seq, on_complete,
                             (txn, hit), None]
                if hit <= now:
                    q._lane.append(entry)
                else:
                    _heappush(q._heap, entry)
                q._live += 1
                return
        elif hierarchy.remote_cache is not None:
            # Remote write: any locally cached copy becomes stale.
            hierarchy.remote_cache.invalidate_address(txn.address)
        self._kc[id(AccessKind.REMOTE_DCA)] += 1
        arrive = self._fabric_transfer(
            self._engine._now, txn.gpu_id, owner, DATA_MSG_BYTES
        )
        now = self._engine._now
        ringq = self._ringq
        if ringq is not None:
            ringq._place(arrive if arrive > now else now, 0,
                         self._remote_service_leg, (txn, owner, on_complete),
                         None)
            return
        cq = self._cq
        if cq is not None:
            cq._sched(now, arrive, self._remote_service_leg,
                      (txn, owner, on_complete))
            return
        q = self._equeue
        seq = q._seq
        q._seq = seq + 1
        pool = q._pool
        if pool:
            entry = pool.pop()
            entry[0] = arrive if arrive > now else now
            entry[1] = 0
            entry[2] = seq
            entry[3] = self._remote_service_leg
            entry[4] = (txn, owner, on_complete)
        else:
            entry = [arrive if arrive > now else now, 0, seq,
                     self._remote_service_leg, (txn, owner, on_complete), None]
        if arrive <= now:
            q._lane.append(entry)
        else:
            _heappush(q._heap, entry)
        q._live += 1

    def _remote_service_leg(self, txn: MemoryTransaction, owner: int, on_complete: Callable) -> None:
        served = self._rdma_service[owner](
            self._engine._now, txn.address, txn.is_write
        )
        now = self._engine._now
        ringq = self._ringq
        if ringq is not None:
            ringq._place(served if served > now else now, 0,
                         self._remote_response_leg, (txn, owner, on_complete),
                         None)
            return
        cq = self._cq
        if cq is not None:
            cq._sched(now, served, self._remote_response_leg,
                      (txn, owner, on_complete))
            return
        q = self._equeue
        seq = q._seq
        q._seq = seq + 1
        pool = q._pool
        if pool:
            entry = pool.pop()
            entry[0] = served if served > now else now
            entry[1] = 0
            entry[2] = seq
            entry[3] = self._remote_response_leg
            entry[4] = (txn, owner, on_complete)
        else:
            entry = [served if served > now else now, 0, seq,
                     self._remote_response_leg, (txn, owner, on_complete), None]
        if served <= now:
            q._lane.append(entry)
        else:
            _heappush(q._heap, entry)
        q._live += 1

    def _remote_response_leg(self, txn: MemoryTransaction, owner: int, on_complete: Callable) -> None:
        arrive = self._fabric_transfer(
            self._engine._now, owner, txn.gpu_id, DATA_MSG_BYTES
        )
        if not txn.is_write:
            self._hier[txn.gpu_id].remote_cache_fill(txn.address)
        now = self._engine._now
        ringq = self._ringq
        if ringq is not None:
            ringq._place(arrive if arrive > now else now, 0, on_complete,
                         (txn, arrive), None)
            return
        cq = self._cq
        if cq is not None:
            cq._sched(now, arrive, on_complete, (txn, arrive))
            return
        q = self._equeue
        seq = q._seq
        q._seq = seq + 1
        pool = q._pool
        if pool:
            entry = pool.pop()
            entry[0] = arrive if arrive > now else now
            entry[1] = 0
            entry[2] = seq
            entry[3] = on_complete
            entry[4] = (txn, arrive)
        else:
            entry = [arrive if arrive > now else now, 0, seq, on_complete,
                     (txn, arrive), None]
        if arrive <= now:
            q._lane.append(entry)
        else:
            _heappush(q._heap, entry)
        q._live += 1

    # CPU DCA (DFTM denial path) -----------------------------------------

    def cpu_dca_access(self, txn: MemoryTransaction, start: float, on_complete: Callable) -> None:
        """DCA to CPU memory; ``start`` is when the translation reply lands."""
        self._kc[id(AccessKind.CPU_DCA)] += 1
        self._at(start, self._cpu_request_leg, txn, on_complete)

    def _cpu_request_leg(self, txn: MemoryTransaction, on_complete: Callable) -> None:
        arrive = self._fabric_transfer(
            self._engine._now, txn.gpu_id, CPU_PORT, DATA_MSG_BYTES
        )
        now = self._engine._now
        ringq = self._ringq
        if ringq is not None:
            ringq._place(arrive if arrive > now else now, 0,
                         self._cpu_service_leg, (txn, on_complete), None)
            return
        cq = self._cq
        if cq is not None:
            cq._sched(now, arrive, self._cpu_service_leg, (txn, on_complete))
            return
        q = self._equeue
        seq = q._seq
        q._seq = seq + 1
        pool = q._pool
        if pool:
            entry = pool.pop()
            entry[0] = arrive if arrive > now else now
            entry[1] = 0
            entry[2] = seq
            entry[3] = self._cpu_service_leg
            entry[4] = (txn, on_complete)
        else:
            entry = [arrive if arrive > now else now, 0, seq,
                     self._cpu_service_leg, (txn, on_complete), None]
        if arrive <= now:
            q._lane.append(entry)
        else:
            _heappush(q._heap, entry)
        q._live += 1

    def _cpu_service_leg(self, txn: MemoryTransaction, on_complete: Callable) -> None:
        served = (
            self._cpu_memory.acquire(self._engine._now, DATA_MSG_BYTES)
            + self._cpu_mem_latency
        )
        now = self._engine._now
        ringq = self._ringq
        if ringq is not None:
            ringq._place(served if served > now else now, 0,
                         self._cpu_response_leg, (txn, on_complete), None)
            return
        cq = self._cq
        if cq is not None:
            cq._sched(now, served, self._cpu_response_leg, (txn, on_complete))
            return
        q = self._equeue
        seq = q._seq
        q._seq = seq + 1
        pool = q._pool
        if pool:
            entry = pool.pop()
            entry[0] = served if served > now else now
            entry[1] = 0
            entry[2] = seq
            entry[3] = self._cpu_response_leg
            entry[4] = (txn, on_complete)
        else:
            entry = [served if served > now else now, 0, seq,
                     self._cpu_response_leg, (txn, on_complete), None]
        if served <= now:
            q._lane.append(entry)
        else:
            _heappush(q._heap, entry)
        q._live += 1

    def _cpu_response_leg(self, txn: MemoryTransaction, on_complete: Callable) -> None:
        arrive = self._fabric_transfer(
            self._engine._now, CPU_PORT, txn.gpu_id, DATA_MSG_BYTES
        )
        now = self._engine._now
        ringq = self._ringq
        if ringq is not None:
            ringq._place(arrive if arrive > now else now, 0, on_complete,
                         (txn, arrive), None)
            return
        cq = self._cq
        if cq is not None:
            cq._sched(now, arrive, on_complete, (txn, arrive))
            return
        q = self._equeue
        seq = q._seq
        q._seq = seq + 1
        pool = q._pool
        if pool:
            entry = pool.pop()
            entry[0] = arrive if arrive > now else now
            entry[1] = 0
            entry[2] = seq
            entry[3] = on_complete
            entry[4] = (txn, arrive)
        else:
            entry = [arrive if arrive > now else now, 0, seq, on_complete,
                     (txn, arrive), None]
        if arrive <= now:
            q._lane.append(entry)
        else:
            _heappush(q._heap, entry)
        q._live += 1

    # Post-migration routing ----------------------------------------------

    def route_after_migration(self, txn: MemoryTransaction, start: float, on_complete: Callable) -> None:
        """Resume an access that waited for a page migration."""
        location = self._page_table.location(txn.page)
        if location == txn.gpu_id:
            if not self._l2:
                self._bind_gpus()
            self._l2[txn.gpu_id].insert(txn.page, location)
            self._l1[txn.gpu_id][txn.cu_id].insert(txn.page, location)
            if txn.kind is None:
                txn.kind = AccessKind.FAULT_MIGRATE
            self._at(start, self._local_leg, txn, on_complete)
            return
        if location >= 0:
            txn.kind = AccessKind.REMOTE_DCA
            self._at(start, self._remote_request_leg, txn, location, on_complete)
            return
        # Still CPU-resident (page bounced back); serve via CPU DCA.
        txn.kind = AccessKind.CPU_DCA
        self._kc[id(AccessKind.CPU_DCA)] += 1
        self._at(start, self._cpu_request_leg, txn, on_complete)

    # ------------------------------------------------------------------

    @property
    def kind_counts(self) -> dict:
        """Transactions by service kind (enum-keyed, enum order)."""
        kc = self._kc
        return {k: kc[id(k)] for k in AccessKind}

    # ------------------------------------------------------------------
    # State capture (snapshot/fork support)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """``id()`` keys are process-local, so ``_kc`` travels as a plain
        list in ``AccessKind`` order.

        The per-GPU dispatch tables pickle as-is: they hold bound methods
        and component sub-objects the pickle memo keeps aliased to the
        live components, and a restored run's first event may be a mid-
        chain leg that indexes them without the lazy-rebuild check.
        """
        state = self.__dict__.copy()
        state["_kc"] = [self._kc[id(k)] for k in AccessKind]
        state["_checks"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._kc = {
            id(k): count for k, count in zip(AccessKind, state["_kc"])
        }

    def local_fraction(self) -> float:
        """Fraction of transactions serviced from local GPU memory."""
        total = sum(self.kind_counts.values())
        if total == 0:
            return 0.0
        local = (
            self.kind_counts[AccessKind.LOCAL]
            + self.kind_counts[AccessKind.FAULT_MIGRATE]
            + self.kind_counts[AccessKind.REMOTE_CACHE]
        )
        return local / total
