"""Bounded exponential backoff for migration retries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.config.faults import FaultConfig


@dataclass(frozen=True)
class ExponentialBackoff:
    """Retry schedule: ``base * multiplier**(attempt-1)`` cycles.

    Attributes:
        base: Delay before the first retry (cycles).
        multiplier: Exponential growth factor per failed attempt.
        max_attempts: Attempt budget before the caller must give up and
            degrade (0 = unbounded, for stress configurations).
    """

    base: int = 2_000
    multiplier: float = 2.0
    max_attempts: int = 3

    @classmethod
    def from_config(cls, faults: "FaultConfig") -> "ExponentialBackoff":
        return cls(
            base=faults.retry_backoff_cycles,
            multiplier=faults.retry_backoff_multiplier,
            max_attempts=faults.max_migration_attempts,
        )

    def delay(self, attempt: int) -> int:
        """Backoff before retry number ``attempt`` (1-indexed), in whole
        cycles.

        The retry is scheduled on the engine clock, where every other
        latency is an integer cycle count; rounding here (minimum one
        cycle) keeps retry events from landing at fractional timestamps
        between cycles when the multiplier is not integral.
        """
        if attempt < 1:
            raise ValueError("attempt is 1-indexed")
        return max(1, round(self.base * self.multiplier ** (attempt - 1)))

    def exhausted(self, attempt: int) -> bool:
        """True when ``attempt`` failures used up the whole budget."""
        return self.max_attempts > 0 and attempt >= self.max_attempts
