"""Seeded fault injection: turning a :class:`FaultConfig` into decisions.

Every stochastic fault decision draws from its own labelled
:mod:`repro.sim.rng` stream derived from ``(seed, "fault", <subsystem>)``,
so the same seed + plan injects the same faults at the same simulation
points, and enabling one fault class never perturbs another's sequence.
Deterministic (time-windowed) faults — link degradation, GPU throttling —
consume no randomness at all.
"""

from __future__ import annotations

from repro.config.faults import FaultConfig, LinkFaultSpec, ThrottleSpec
from repro.sim.component import Component
from repro.sim.engine import Engine
from repro.sim.rng import make_rng


class FaultInjector(Component):
    """Answers "does this fault fire here?" for every hooked component.

    The injector is consulted by the fabric (per transfer), the driver
    (per page-migration arrival and per shootdown round), and the compute
    units (per issue delay).  All counters live in the component ``stats``
    dict so the metrics collector harvests them uniformly.
    """

    def __init__(self, engine: Engine, faults: FaultConfig, seed: int) -> None:
        super().__init__(engine, "fault_injector")
        self.faults = faults
        self.seed = seed
        self._rng_migration = make_rng(seed, "fault", "migration")
        self._rng_shootdown = make_rng(seed, "fault", "shootdown")
        self._link_faults: dict[int, list[LinkFaultSpec]] = {}
        for spec in faults.link_faults:
            self._link_faults.setdefault(spec.device, []).append(spec)
        self._throttles: dict[int, list[ThrottleSpec]] = {}
        for throttle in faults.throttles:
            self._throttles.setdefault(throttle.gpu, []).append(throttle)

    # ------------------------------------------------------------------
    # Page-migration transfers
    # ------------------------------------------------------------------

    def migration_transfer_ok(self, page: int, src: int, dst: int) -> bool:
        """Whether one page's data transfer landed intact (else NACKed)."""
        rate = self.faults.migration_drop_rate
        if rate <= 0.0:
            return True
        if self._rng_migration.random() < rate:
            self.bump("transfers_dropped")
            return False
        return True

    # ------------------------------------------------------------------
    # TLB shootdown acknowledgements
    # ------------------------------------------------------------------

    def shootdown_penalty(self) -> tuple[int, bool]:
        """(extra ack cycles, timed_out) for one shootdown round."""
        delay = self.faults.shootdown_ack_delay
        timed_out = False
        rate = self.faults.shootdown_timeout_rate
        if rate > 0.0 and self._rng_shootdown.random() < rate:
            timed_out = True
            delay += self.faults.shootdown_timeout_cycles
            self.bump("shootdown_timeouts")
        if delay:
            self.bump("shootdown_ack_delay_cycles", delay)
        return delay, timed_out

    # ------------------------------------------------------------------
    # Fabric links (deterministic, time-windowed)
    # ------------------------------------------------------------------

    def link_bandwidth_factor(self, device: int, now: float) -> float:
        """Effective bandwidth multiplier for a port at ``now`` (<= 1)."""
        factor = 1.0
        for spec in self._link_faults.get(device, ()):
            if spec.active(now):
                factor = min(factor, spec.bandwidth_factor)
        if factor < 1.0:
            self.bump("link_degraded_transfers")
        return factor

    def link_extra_latency(self, device: int, now: float) -> int:
        """Additional one-way latency charged on a port at ``now``."""
        extra = 0
        for spec in self._link_faults.get(device, ()):
            if spec.active(now):
                extra += spec.extra_latency
        if extra:
            self.bump("link_extra_latency_cycles", extra)
        return extra

    def has_link_faults(self, device: int) -> bool:
        return device in self._link_faults

    # ------------------------------------------------------------------
    # Shader-engine throttling (deterministic, time-windowed)
    # ------------------------------------------------------------------

    def throttle_factor(self, gpu_id: int, now: float) -> float:
        """Issue-delay multiplier for a GPU's CUs at ``now`` (>= 1)."""
        factor = 1.0
        for throttle in self._throttles.get(gpu_id, ()):
            if throttle.active(now):
                factor = max(factor, throttle.issue_delay_factor)
        if factor > 1.0:
            self.bump("throttled_issues")
        return factor

    def has_throttle(self, gpu_id: int) -> bool:
        return gpu_id in self._throttles
