"""Deterministic fault injection and recovery (the resilience subsystem).

Real UM stacks degrade gracefully when migration gets expensive or flaky:
GPUVM falls back to remote access when migration is unprofitable, and
cooperative memory managers recover transparently from transfer failures.
This package gives the simulator the same properties:

* :class:`~repro.config.faults.FaultConfig` (config layer) declares a
  fault plan — dropped migration transfers, degraded/stalled fabric
  links, delayed or timed-out TLB-shootdown acks, throttled shader
  engines — plus the driver's retry/backoff budget.
* :class:`~repro.resilience.injector.FaultInjector` turns the plan into
  seeded, reproducible per-event decisions (driven by
  :mod:`repro.sim.rng` streams, so the same seed + plan injects the same
  faults at the same points).
* :class:`~repro.resilience.retry.ExponentialBackoff` is the driver's
  recovery policy: bounded retries with exponential backoff, then
  degradation to pinning the page and serving it via DCA remote access —
  the paper's own baseline path.

See ``docs/resilience.md`` for the fault model and recovery semantics.
"""

from repro.config.faults import (
    NO_FAULTS,
    FaultConfig,
    LinkFaultSpec,
    ThrottleSpec,
)
from repro.resilience.injector import FaultInjector
from repro.resilience.retry import ExponentialBackoff

__all__ = [
    "FaultConfig",
    "LinkFaultSpec",
    "ThrottleSpec",
    "NO_FAULTS",
    "FaultInjector",
    "ExponentialBackoff",
]
