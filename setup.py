"""Build script: the optional compiled event core.

Everything declarative lives in pyproject.toml; this file exists only to
describe the optional C extension ``repro.sim._ckernel``.  The build is
best-effort by design: on a host without a C compiler (or with broken
headers) the extension is skipped with a notice and the install proceeds,
leaving the pure-Python heap oracle as the engine backend — nothing in
the package imports the extension unconditionally.

Build in place for development with::

    make ext            # or: python setup.py build_ext --inplace
"""

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """Skip (never fail) when the compiled event core cannot be built."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # toolchain missing entirely
            self._skip(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:  # compile/link failure
            self._skip(exc)

    @staticmethod
    def _skip(exc):
        print(
            "warning: optional extension repro.sim._ckernel was not built "
            f"({exc!r}); the pure-Python 'heap' engine backend remains the "
            "default and the 'compiled' backend will be unavailable"
        )


setup(
    ext_modules=[
        Extension(
            "repro.sim._ckernel",
            sources=["src/repro/sim/_ckernel.c"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": OptionalBuildExt},
)
